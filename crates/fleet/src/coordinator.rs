//! The reconfiguration coordinator: staggers fabric switches so at most
//! K devices are draining at the same time.
//!
//! A fleet in which every device reacts to the same workload shift
//! reconfigures *together* — and the fleet's throughput falls off a cliff
//! for the duration of the stall. The coordinator prevents that by
//! treating concurrent drains as K slots: a device asking to start a
//! stall window is granted the earliest instant at which fewer than K
//! windows overlap its own, which may be later than "now". The switch
//! still happens (policy bookkeeping stays consistent — a deferral is a
//! longer batch wait, never a cancelled decision); it just waits its
//! turn.
//!
//! The ≤ K invariant holds *by construction*: a window is only ever
//! placed where the overlap budget allows it, so no interleaving of
//! acquisitions can exceed the budget.

/// Grants stall windows subject to the concurrent-drain budget.
#[derive(Debug, Clone)]
pub struct ReconfigCoordinator {
    max_concurrent: usize,
    /// Granted windows `(start_s, end_s)`, pruned as time advances.
    windows: Vec<(f64, f64)>,
}

impl ReconfigCoordinator {
    /// Creates a coordinator allowing at most `max_concurrent` devices to
    /// drain simultaneously.
    ///
    /// # Panics
    ///
    /// Panics if `max_concurrent` is zero (no switch could ever be
    /// granted).
    #[must_use]
    pub fn new(max_concurrent: usize) -> Self {
        assert!(max_concurrent > 0, "drain budget must allow one drain");
        Self {
            max_concurrent,
            windows: Vec::new(),
        }
    }

    /// The configured budget.
    #[must_use]
    pub fn max_concurrent(&self) -> usize {
        self.max_concurrent
    }

    /// Requests a drain window of `stall_s` seconds starting no earlier
    /// than `now_s`; returns the granted start instant (`>= now_s`).
    ///
    /// The granted window is the earliest placement that keeps the number
    /// of overlapping granted windows below the budget. Placement is
    /// conservative — windows counted as conflicting need only overlap
    /// the candidate interval somewhere — which can only stagger *more*
    /// than strictly necessary, never break the invariant.
    pub fn acquire(&mut self, now_s: f64, stall_s: f64) -> f64 {
        // Windows fully in the past can no longer conflict (acquisitions
        // arrive in nondecreasing event time).
        self.windows.retain(|&(_, end)| end > now_s);
        if stall_s <= 0.0 {
            return now_s;
        }
        let mut start = now_s;
        loop {
            let end = start + stall_s;
            let conflicting: Vec<f64> = self
                .windows
                .iter()
                .filter(|&&(s, e)| s < end && e > start)
                .map(|&(_, e)| e)
                .collect();
            if conflicting.len() < self.max_concurrent {
                self.windows.push((start, end));
                return start;
            }
            // Budget exhausted somewhere in [start, end): retry once the
            // earliest conflicting window has ended.
            let earliest_end = conflicting.iter().copied().fold(f64::INFINITY, f64::min);
            debug_assert!(earliest_end > start, "conflict must end in the future");
            start = earliest_end;
        }
    }

    /// Number of granted windows overlapping instant `t_s` — test and
    /// telemetry helper.
    #[must_use]
    pub fn active_at(&self, t_s: f64) -> usize {
        self.windows
            .iter()
            .filter(|&&(s, e)| s <= t_s && t_s < e)
            .count()
    }
}

/// Maximum number of intervals overlapping at any instant — the witness
/// the stagger tests check against the budget.
#[must_use]
pub fn max_overlap(windows: &[(f64, f64)]) -> usize {
    let mut edges: Vec<(f64, i64)> = Vec::with_capacity(windows.len() * 2);
    for &(s, e) in windows {
        if e > s {
            edges.push((s, 1));
            edges.push((e, -1));
        }
    }
    // Ends sort before starts at the same instant: windows are half-open.
    edges.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut active = 0i64;
    let mut worst = 0i64;
    for (_, delta) in edges {
        active += delta;
        worst = worst.max(active);
    }
    usize::try_from(worst.max(0)).expect("overlap fits usize")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_slot_serializes_overlapping_requests() {
        let mut c = ReconfigCoordinator::new(1);
        let a = c.acquire(0.0, 0.1);
        let b = c.acquire(0.02, 0.1);
        let d = c.acquire(0.03, 0.1);
        assert_eq!(a, 0.0);
        assert!((b - 0.1).abs() < 1e-12, "second waits for the first");
        assert!((d - 0.2).abs() < 1e-12, "third waits for the second");
        assert_eq!(max_overlap(&[(a, a + 0.1), (b, b + 0.1), (d, d + 0.1)]), 1);
    }

    #[test]
    fn budget_two_admits_two_then_defers() {
        let mut c = ReconfigCoordinator::new(2);
        let a = c.acquire(0.0, 0.2);
        let b = c.acquire(0.01, 0.2);
        let d = c.acquire(0.02, 0.2);
        assert_eq!(a, 0.0);
        assert!((b - 0.01).abs() < 1e-12, "second fits in the budget");
        assert!(d >= 0.2 - 1e-12, "third defers past a window end");
        let windows = [(a, a + 0.2), (b, b + 0.2), (d, d + 0.2)];
        assert!(max_overlap(&windows) <= 2);
    }

    #[test]
    fn non_overlapping_requests_start_immediately() {
        let mut c = ReconfigCoordinator::new(1);
        assert_eq!(c.acquire(0.0, 0.1), 0.0);
        assert_eq!(c.acquire(0.5, 0.1), 0.5);
        assert_eq!(c.acquire(1.0, 0.1), 1.0);
    }

    #[test]
    fn zero_stall_is_a_no_op() {
        let mut c = ReconfigCoordinator::new(1);
        let a = c.acquire(0.0, 0.5);
        assert_eq!(a, 0.0);
        // A zero-length "drain" neither waits nor consumes the budget.
        assert_eq!(c.acquire(0.1, 0.0), 0.1);
        assert_eq!(c.active_at(0.1), 1);
    }

    #[test]
    fn randomized_acquisitions_never_exceed_budget() {
        for k in 1..=3usize {
            let mut c = ReconfigCoordinator::new(k);
            let mut windows = Vec::new();
            // A deterministic pseudo-random schedule of acquisition times
            // and stall lengths.
            let mut t = 0.0;
            for i in 0u64..200 {
                t += (i.wrapping_mul(2_654_435_761) % 50) as f64 * 1e-3;
                let stall = 0.02 + (i.wrapping_mul(40_503) % 80) as f64 * 1e-3;
                let start = c.acquire(t, stall);
                assert!(start >= t - 1e-12);
                windows.push((start, start + stall));
            }
            assert!(
                max_overlap(&windows) <= k,
                "budget {k} violated: {}",
                max_overlap(&windows)
            );
        }
    }

    #[test]
    #[should_panic(expected = "drain budget")]
    fn zero_budget_is_rejected() {
        let _ = ReconfigCoordinator::new(0);
    }
}
