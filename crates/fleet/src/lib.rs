//! # adaflow-fleet — deterministic fleet-scale serving simulation
//!
//! The serving layer (`adaflow-serve`) answers "what does one adaptive
//! accelerator do under a request stream?". This crate scales the
//! question out: a *fleet* of N simulated accelerator devices — possibly
//! heterogeneous (full AdaFlow runtime, fixed-max FINN baseline,
//! flexible-fabric-only) — sits behind a fleet router, and a
//! reconfiguration coordinator staggers fabric switches so the fleet
//! never loses more than K devices to drains at once.
//!
//! The simulation is a single deterministic discrete-event loop
//! ([`FleetEngine`]): every device contributes its batch-completion and
//! batch-close candidates, the shared arrival trace contributes the next
//! request, and a periodic sampler measures queue-depth imbalance. Events
//! fire in global time order with a fixed tie discipline, so a
//! `(config, library, workload, seed)` tuple reproduces bit-for-bit —
//! the property the CLI `fleet --check` replay and the determinism
//! property suite verify.
//!
//! Module map:
//!
//! - [`config`] — [`FleetConfig`] (composition, router, stagger budget)
//!   and the `FL001`/`FL002` lint rules.
//! - [`router`] — the [`RoutePolicy`] trait and the four dispatch
//!   policies: round-robin, least-loaded (join-shortest-queue),
//!   power-of-two-choices, deadline-aware.
//! - [`coordinator`] — the [`ReconfigCoordinator`] stagger gate and the
//!   [`max_overlap`] witness.
//! - [`engine`] — the fleet discrete-event loop.
//! - [`summary`] — [`FleetSummary`] / [`DeviceSummary`] with
//!   conservation checks and multi-seed means.
//! - [`experiment`] — [`FleetExperiment`], seeded multi-run sweeps with
//!   order-preserving parallel sharding.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod coordinator;
pub mod engine;
pub mod experiment;
pub mod router;
pub mod summary;

pub use config::{DeviceKind, FleetConfig, RouterKind};
pub use coordinator::{max_overlap, ReconfigCoordinator};
pub use engine::FleetEngine;
pub use experiment::FleetExperiment;
pub use router::{
    DeadlineAwareRouter, DeviceSnapshot, LeastLoadedRouter, PowerOfTwoRouter, RoundRobinRouter,
    RoutePolicy,
};
pub use summary::{DeviceSummary, FleetSummary};

/// Everything needed to run a fleet simulation.
pub mod prelude {
    pub use crate::config::{DeviceKind, FleetConfig, RouterKind};
    pub use crate::coordinator::{max_overlap, ReconfigCoordinator};
    pub use crate::engine::FleetEngine;
    pub use crate::experiment::FleetExperiment;
    pub use crate::router::{DeviceSnapshot, RoutePolicy};
    pub use crate::summary::{DeviceSummary, FleetSummary};
}
