//! Multi-run fleet experiments.
//!
//! The fleet counterpart of `adaflow_serve::ServeExperiment`: runs seeded
//! fleet simulations in parallel with order-preserving sharding (the mean
//! is bit-identical for any worker count — the property the fleet
//! determinism suite pins) and averages the summaries element-wise.

use crate::config::FleetConfig;
use crate::engine::FleetEngine;
use crate::summary::FleetSummary;
use adaflow::{Library, RuntimeConfig};
use adaflow_edge::WorkloadSpec;
use adaflow_telemetry::SinkHandle;

/// A repeated, seeded fleet experiment over one library and workload.
#[derive(Debug, Clone)]
pub struct FleetExperiment<'l> {
    library: &'l Library,
    workload: WorkloadSpec,
    config: FleetConfig,
    runtime: RuntimeConfig,
    runs: usize,
    base_seed: u64,
    threads: usize,
}

impl<'l> FleetExperiment<'l> {
    /// Creates an experiment with 20 seeded runs, seed 1, the default
    /// fleet shape and one worker per core.
    #[must_use]
    pub fn new(library: &'l Library, workload: WorkloadSpec) -> Self {
        Self {
            library,
            workload,
            config: FleetConfig::default(),
            runtime: RuntimeConfig::default(),
            runs: 20,
            base_seed: 1,
            threads: 0,
        }
    }

    /// Sets the number of seeded repetitions.
    #[must_use]
    pub fn runs(mut self, runs: usize) -> Self {
        assert!(runs > 0, "need at least one run");
        self.runs = runs;
        self
    }

    /// Sets the base seed (run `i` uses `base_seed + i`).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Sets the worker-thread count for sharding runs (`0` = one per
    /// core). Results are identical for any value — sharding preserves
    /// order and each run owns its whole event loop.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Overrides the fleet configuration.
    #[must_use]
    pub fn config(mut self, config: FleetConfig) -> Self {
        self.config = config;
        self
    }

    /// Overrides the runtime-manager configuration the adaptive devices
    /// run under.
    #[must_use]
    pub fn runtime(mut self, runtime: RuntimeConfig) -> Self {
        self.runtime = runtime;
        self
    }

    /// The fleet configuration in effect.
    #[must_use]
    pub fn fleet_config(&self) -> &FleetConfig {
        &self.config
    }

    /// Runs the experiment and returns the averaged fleet summary.
    #[must_use]
    pub fn run(&self) -> FleetSummary {
        let seeds: Vec<u64> = (0..self.runs as u64).map(|i| self.base_seed + i).collect();
        let engine = FleetEngine::new(self.config.clone()).with_runtime(self.runtime.clone());
        let all = adaflow_nn::parallel::par_map(&seeds, self.threads, |&seed| {
            engine.run(self.library, &self.workload, seed)
        });
        FleetSummary::mean(&all).expect("at least one run")
    }

    /// One traced run: a single seed with a telemetry sink attached, for
    /// the CLI's trace exports and the `--check` replay.
    #[must_use]
    pub fn run_traced(&self, seed: u64, sink: SinkHandle) -> FleetSummary {
        FleetEngine::new(self.config.clone())
            .with_runtime(self.runtime.clone())
            .with_sink(sink)
            .run(self.library, &self.workload, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaflow::LibraryGenerator;
    use adaflow_edge::Scenario;
    use adaflow_model::prelude::*;
    use adaflow_nn::DatasetKind;

    fn library() -> Library {
        LibraryGenerator::default_edge_setup()
            .generate(
                &topology::cnv_w2a2_cifar10().expect("builds"),
                DatasetKind::Cifar10,
            )
            .expect("generates")
    }

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            devices: 8,
            fps_per_device: 30.0,
            duration_s: 3.0,
            scenario: Scenario::Unpredictable,
        }
    }

    #[test]
    fn mean_is_identical_for_any_thread_count() {
        let lib = library();
        let exp = FleetExperiment::new(&lib, spec()).runs(4);
        let serial = exp.clone().threads(1).run();
        let two = exp.clone().threads(2).run();
        let auto = exp.threads(0).run();
        assert_eq!(serial, two);
        assert_eq!(serial, auto);
    }

    #[test]
    fn traced_run_matches_untraced_summary() {
        let lib = library();
        let exp = FleetExperiment::new(&lib, spec()).runs(1).seed(9);
        let untraced = exp.run();
        let (sink, recorder) = SinkHandle::recorder(1 << 16);
        let traced = exp.run_traced(9, sink);
        assert_eq!(untraced, traced, "sink must not perturb the simulation");
        assert!(!recorder.is_empty(), "traced run emits events");
    }
}
