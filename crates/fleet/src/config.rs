//! Fleet composition, router selection and the FL lint rules.
//!
//! [`FleetConfig`] declares a heterogeneous fleet — how many simulated
//! accelerator devices, which serving policy each runs, which router
//! dispatches requests and how many devices the reconfiguration
//! coordinator lets drain at once. Its [`validate`](FleetConfig::validate)
//! method contributes two fleet-level rules to the workspace lint catalog:
//!
//! | code | checks |
//! |-------|--------|
//! | FL001 | the fleet has at least one device (and a usable drain budget) |
//! | FL002 | the router matches the deadline discipline it is asked to serve |
//!
//! Both run through the `adaflow-verify` [`LintConfig`] allow/deny policy,
//! like the graph (`AF`/`DF`/`HL`) and serving (`SV`) families.

use adaflow_serve::ServeConfig;
use adaflow_verify::{Diagnostics, LintConfig, Report, Severity};
use serde::{Deserialize, Serialize};

/// The serving policy one fleet device runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeviceKind {
    /// The full AdaFlow Runtime Manager (fixed + flexible fabrics,
    /// deadline-aware reconfiguration guard).
    AdaFlow,
    /// The static FINN baseline: max-accuracy model, never switches.
    FixedMax,
    /// Pinned to the flexible fabric: switches are weight reloads.
    FlexibleOnly,
}

impl DeviceKind {
    /// Parses the CLI spelling (`adaflow`, `fixed`, `flexible`).
    #[must_use]
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "adaflow" => Some(DeviceKind::AdaFlow),
            "fixed" | "fixed-max" => Some(DeviceKind::FixedMax),
            "flexible" | "flexible-only" => Some(DeviceKind::FlexibleOnly),
            _ => None,
        }
    }

    /// Parses a comma-separated fleet spelling (`adaflow,adaflow,fixed`).
    /// Returns `None` on the first unknown kind.
    #[must_use]
    pub fn parse_fleet(list: &str) -> Option<Vec<Self>> {
        list.split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(Self::parse)
            .collect()
    }

    /// Stable display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DeviceKind::AdaFlow => "adaflow",
            DeviceKind::FixedMax => "fixed-max",
            DeviceKind::FlexibleOnly => "flexible-only",
        }
    }
}

/// Which routing policy dispatches arrivals across the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouterKind {
    /// Cycle through devices in index order, load-blind.
    RoundRobin,
    /// Join the shortest queue (queued + in-flight), ties to the lowest
    /// index.
    LeastLoaded,
    /// Power of two choices: sample two distinct devices uniformly, join
    /// the less loaded.
    PowerOfTwo,
    /// Rank devices by estimated completion time of the new request —
    /// accounting the in-flight batch (including any reconfiguration
    /// stall it absorbed) plus the queued backlog drained at the device's
    /// live throughput.
    DeadlineAware,
}

impl RouterKind {
    /// Parses the CLI spelling (`rr`, `jsq`, `p2c`, `deadline`).
    #[must_use]
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "rr" | "round-robin" => Some(RouterKind::RoundRobin),
            "jsq" | "least-loaded" => Some(RouterKind::LeastLoaded),
            "p2c" | "power-of-two" => Some(RouterKind::PowerOfTwo),
            "deadline" | "deadline-aware" => Some(RouterKind::DeadlineAware),
            _ => None,
        }
    }

    /// Stable display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RouterKind::RoundRobin => "round-robin",
            RouterKind::LeastLoaded => "least-loaded",
            RouterKind::PowerOfTwo => "power-of-two",
            RouterKind::DeadlineAware => "deadline-aware",
        }
    }

    /// Every router, in CLI presentation order.
    pub const ALL: [RouterKind; 4] = [
        RouterKind::RoundRobin,
        RouterKind::LeastLoaded,
        RouterKind::PowerOfTwo,
        RouterKind::DeadlineAware,
    ];
}

/// Full configuration of a fleet simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// The fleet composition: one serving policy per device, in index
    /// order.
    pub devices: Vec<DeviceKind>,
    /// The dispatch policy in front of the fleet.
    pub router: RouterKind,
    /// Per-device serving configuration (queue, batcher, deadline). The
    /// `initial_rate_fps` knob is interpreted fleet-wide and split evenly
    /// across devices.
    pub serve: ServeConfig,
    /// Stagger budget: at most this many devices may be draining for a
    /// switch at the same time.
    pub max_concurrent_drains: usize,
    /// Period of the fleet load-imbalance sampler, seconds.
    pub imbalance_period_s: f64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            devices: vec![
                DeviceKind::AdaFlow,
                DeviceKind::AdaFlow,
                DeviceKind::FlexibleOnly,
                DeviceKind::FixedMax,
            ],
            router: RouterKind::DeadlineAware,
            serve: ServeConfig::default(),
            max_concurrent_drains: 1,
            imbalance_period_s: 1.0,
        }
    }
}

impl FleetConfig {
    /// A homogeneous fleet of `n` devices of one kind.
    #[must_use]
    pub fn homogeneous(n: usize, kind: DeviceKind) -> Self {
        Self {
            devices: vec![kind; n],
            ..Self::default()
        }
    }

    /// Statically validates the fleet shape under the workspace
    /// diagnostics engine (`FL` rule family).
    #[must_use]
    pub fn validate(&self, lint: LintConfig) -> Report {
        let mut diags = Diagnostics::with_config(lint);
        self.check_fl001(&mut diags);
        self.check_fl002(&mut diags);
        diags.into_report("fleet-config")
    }

    /// FL001: a fleet must contain at least one device, and the stagger
    /// budget must allow at least one drain (a zero budget deadlocks every
    /// fabric switch forever).
    fn check_fl001(&self, diags: &mut Diagnostics) {
        if self.devices.is_empty() {
            diags.report(
                "FL001",
                Severity::Error,
                None,
                "fleet has zero devices: no request can ever be routed",
                Some("declare at least one device, e.g. --fleet adaflow".into()),
            );
        } else if self.max_concurrent_drains == 0 {
            diags.report(
                "FL001",
                Severity::Error,
                None,
                "stagger budget is zero: no device could ever drain for a switch, \
                 deadlocking every reconfiguration",
                Some("set --max-drains to at least 1".into()),
            );
        } else {
            diags.report(
                "FL001",
                Severity::Info,
                None,
                format!(
                    "fleet of {} device(s) with a stagger budget of {}",
                    self.devices.len(),
                    self.max_concurrent_drains
                ),
                None,
            );
        }
    }

    /// FL002: router/deadline mismatch. The deadline-aware router ranks
    /// devices by deadline slack, which does not exist without a positive
    /// deadline budget; conversely a deadline SLO dispatched round-robin
    /// ignores exactly the per-device drain/stall state that decides
    /// whether the SLO is met.
    fn check_fl002(&self, diags: &mut Diagnostics) {
        match self.router {
            RouterKind::DeadlineAware if self.serve.deadline_s <= 0.0 => {
                diags.report(
                    "FL002",
                    Severity::Error,
                    None,
                    "deadline-aware router configured without a positive deadline budget: \
                     there is no slack to rank devices by",
                    Some("set a deadline (e.g. --deadline-ms 250) or pick another router".into()),
                );
            }
            RouterKind::RoundRobin if self.serve.deadline_s > 0.0 => {
                diags.report(
                    "FL002",
                    Severity::Warn,
                    None,
                    format!(
                        "a {:.0} ms deadline SLO is dispatched round-robin, blind to \
                         per-device backlog and reconfiguration drains",
                        self.serve.deadline_s * 1e3
                    ),
                    Some("use --router deadline (or jsq/p2c) for deadline traffic".into()),
                );
            }
            _ => {
                diags.report(
                    "FL002",
                    Severity::Info,
                    None,
                    format!(
                        "router {} is consistent with a {:.0} ms deadline budget",
                        self.router.name(),
                        self.serve.deadline_s * 1e3
                    ),
                    None,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_clean() {
        let report = FleetConfig::default().validate(LintConfig::default());
        assert!(!report.has_errors());
        assert_eq!(report.count(Severity::Warn), 0);
        assert!(report.fired("FL001"));
        assert!(report.fired("FL002"));
    }

    #[test]
    fn fl001_rejects_zero_device_fleet() {
        let config = FleetConfig {
            devices: vec![],
            ..FleetConfig::default()
        };
        let report = config.validate(LintConfig::default());
        assert!(report.has_errors());
        assert!(report.fired("FL001"));
    }

    #[test]
    fn fl001_rejects_zero_drain_budget() {
        let config = FleetConfig {
            max_concurrent_drains: 0,
            ..FleetConfig::default()
        };
        assert!(config.validate(LintConfig::default()).has_errors());
    }

    #[test]
    fn fl002_rejects_deadline_router_without_budget() {
        let mut config = FleetConfig::default();
        config.serve.deadline_s = 0.0;
        let report = config.validate(LintConfig::default());
        assert!(report.has_errors());
        assert!(report.fired("FL002"));
    }

    #[test]
    fn fl002_warns_on_deadline_blind_round_robin() {
        let config = FleetConfig {
            router: RouterKind::RoundRobin,
            ..FleetConfig::default()
        };
        let report = config.validate(LintConfig::default());
        assert!(!report.has_errors());
        assert_eq!(report.count(Severity::Warn), 1);
    }

    #[test]
    fn allow_and_deny_policies_apply() {
        let config = FleetConfig {
            devices: vec![],
            ..FleetConfig::default()
        };
        let lint = LintConfig {
            allow: LintConfig::parse_codes("FL001"),
            ..LintConfig::default()
        };
        assert!(!config.validate(lint).has_errors(), "allowed code drops");

        let rr = FleetConfig {
            router: RouterKind::RoundRobin,
            ..FleetConfig::default()
        };
        let lint = LintConfig {
            deny: LintConfig::parse_codes("FL002"),
            ..LintConfig::default()
        };
        assert!(rr.validate(lint).has_errors(), "denied warn escalates");
    }

    #[test]
    fn spellings_round_trip() {
        for kind in [
            DeviceKind::AdaFlow,
            DeviceKind::FixedMax,
            DeviceKind::FlexibleOnly,
        ] {
            assert_eq!(DeviceKind::parse(kind.name()), Some(kind));
        }
        for router in RouterKind::ALL {
            assert_eq!(RouterKind::parse(router.name()), Some(router));
        }
        assert_eq!(
            DeviceKind::parse_fleet("adaflow, fixed,flexible"),
            Some(vec![
                DeviceKind::AdaFlow,
                DeviceKind::FixedMax,
                DeviceKind::FlexibleOnly
            ])
        );
        assert_eq!(DeviceKind::parse_fleet("adaflow,gpu"), None);
    }
}
