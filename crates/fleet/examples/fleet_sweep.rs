//! Reproduces the fleet-scaling table in `EXPERIMENTS.md`: deadline-hit
//! rate versus fleet size (1/2/4/8 AdaFlow devices) for every routing
//! policy, averaged over 20 seeded Scenario-2 runs at a fixed total
//! offered load.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release -p adaflow-fleet --example fleet_sweep
//! ```

use adaflow::LibraryGenerator;
use adaflow_edge::{Scenario, WorkloadSpec};
use adaflow_fleet::{DeviceKind, FleetConfig, FleetExperiment, RouterKind};
use adaflow_nn::DatasetKind;

const SEEDS: usize = 20;
const FLEET_SIZES: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let library = LibraryGenerator::default_edge_setup()
        .generate(
            &adaflow_model::topology::cnv_w2a2_cifar10().expect("topology builds"),
            DatasetKind::Cifar10,
        )
        .expect("library generates");

    // Fixed total offered load: 80 IoT devices at 30 FPS for 5 s
    // (2400 FPS aggregate) under the unpredictable paper scenario. The
    // load does NOT scale with fleet size, so the table shows how added
    // devices absorb the same demand.
    let spec = WorkloadSpec {
        devices: 80,
        fps_per_device: 30.0,
        duration_s: 5.0,
        scenario: Scenario::Unpredictable,
    };

    println!(
        "Scenario 2, {} FPS aggregate, deadline {} ms, {SEEDS} seeds",
        spec.nominal_fps(),
        250
    );
    println!();
    print!("| router |");
    for n in FLEET_SIZES {
        print!(" {n} dev |");
    }
    println!();
    print!("|---|");
    for _ in FLEET_SIZES {
        print!("---|");
    }
    println!();

    for router in RouterKind::ALL {
        print!("| {} |", router.name());
        for n in FLEET_SIZES {
            let config = FleetConfig {
                router,
                ..FleetConfig::homogeneous(n, DeviceKind::AdaFlow)
            };
            let summary = FleetExperiment::new(&library, spec.clone())
                .runs(SEEDS)
                .config(config)
                .run();
            assert!(summary.conservation_holds(), "conservation");
            print!(
                " {:.1}% hit / {:.1}% shed |",
                summary.deadline_hit_pct, summary.shed_pct
            );
        }
        println!();
    }

    // Heterogeneous mix (the acceptance fleet): two adaptive devices, one
    // flexible-only, one fixed-max. Routing policy matters here because
    // the fixed-max device saturates first and must be routed around.
    println!();
    println!("Heterogeneous 4-device fleet (adaflow,adaflow,flexible,fixed), same load:");
    println!();
    println!("| router | hit | shed | imbalance cv |");
    println!("|---|---|---|---|");
    for router in RouterKind::ALL {
        let config = FleetConfig {
            router,
            ..FleetConfig::default()
        };
        let summary = FleetExperiment::new(&library, spec.clone())
            .runs(SEEDS)
            .config(config)
            .run();
        assert!(summary.conservation_holds(), "conservation");
        println!(
            "| {} | {:.1}% | {:.1}% | {:.3} |",
            router.name(),
            summary.deadline_hit_pct,
            summary.shed_pct,
            summary.routed_share_cv
        );
    }
}
