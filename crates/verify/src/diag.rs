//! The diagnostics engine: structured findings, severity policy and reports.
//!
//! Rules never abort on the first problem the way `Result`-returning
//! validators do; they emit [`Diagnostic`]s into a [`Diagnostics`] collector
//! and keep scanning, so one lint pass surfaces every violation in a graph.
//! A [`LintConfig`] applies the usual compiler-style policy knobs: `allow`
//! suppresses a rule code entirely, `deny` escalates its findings to
//! [`Severity::Error`].

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// How bad a finding is.
///
/// Ordering is by increasing severity (`Info < Warn < Error`), so
/// `max`-folding over a report yields its worst finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Informational: the invariant holds; the diagnostic reports the
    /// computed margin (e.g. accumulator headroom).
    Info,
    /// Suspicious but not provably wrong (e.g. unreachable threshold
    /// levels).
    Warn,
    /// The invariant is violated; executing or synthesizing the graph is
    /// unsound.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        })
    }
}

/// One structured finding emitted by a rule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable rule code (e.g. `"AF006"`). The catalog lives in
    /// [`crate::rules`] and DESIGN.md.
    pub code: String,
    /// Severity after the [`LintConfig`] policy has been applied.
    pub severity: Severity,
    /// Index of the layer the finding anchors to, if layer-specific.
    pub layer: Option<usize>,
    /// Human-readable layer name (e.g. `"conv2"`), if layer-specific.
    pub layer_name: Option<String>,
    /// What was found.
    pub message: String,
    /// How to fix it, when the rule can tell.
    pub suggestion: Option<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.code)?;
        match (&self.layer, &self.layer_name) {
            (Some(idx), Some(name)) => write!(f, " L{idx} ({name})")?,
            (Some(idx), None) => write!(f, " L{idx}")?,
            _ => {}
        }
        write!(f, ": {}", self.message)?;
        if let Some(fix) = &self.suggestion {
            write!(f, " — {fix}")?;
        }
        Ok(())
    }
}

/// Allow/deny policy applied as diagnostics are collected.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintConfig {
    /// Codes whose findings are dropped entirely.
    pub allow: BTreeSet<String>,
    /// Codes whose findings are escalated to [`Severity::Error`].
    pub deny: BTreeSet<String>,
}

impl LintConfig {
    /// Parses a comma-separated code list (`"AF003,DF001"`) into a set.
    #[must_use]
    pub fn parse_codes(list: &str) -> BTreeSet<String> {
        list.split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_uppercase)
            .collect()
    }
}

/// Collects diagnostics from rules, applying the [`LintConfig`] policy.
#[derive(Debug, Clone, Default)]
pub struct Diagnostics {
    config: LintConfig,
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty collector with the default (neutral) policy.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty collector with an allow/deny policy.
    #[must_use]
    pub fn with_config(config: LintConfig) -> Self {
        Self {
            config,
            items: Vec::new(),
        }
    }

    /// Emits one diagnostic, applying the policy: allowed codes are dropped,
    /// denied codes are escalated to [`Severity::Error`]. Info findings are
    /// never escalated — they report margins, not violations.
    pub fn emit(&mut self, mut d: Diagnostic) {
        if self.config.allow.contains(&d.code) {
            return;
        }
        if d.severity == Severity::Warn && self.config.deny.contains(&d.code) {
            d.severity = Severity::Error;
        }
        self.items.push(d);
    }

    /// Shorthand for emitting a finding against a specific layer.
    pub fn report(
        &mut self,
        code: &str,
        severity: Severity,
        layer: Option<(usize, &str)>,
        message: impl Into<String>,
        suggestion: Option<String>,
    ) {
        self.emit(Diagnostic {
            code: code.to_string(),
            severity,
            layer: layer.map(|(i, _)| i),
            layer_name: layer.map(|(_, n)| n.to_string()),
            message: message.into(),
            suggestion,
        });
    }

    /// Finalizes into a report for `subject` (typically the graph name).
    #[must_use]
    pub fn into_report(self, subject: impl Into<String>) -> Report {
        Report {
            subject: subject.into(),
            diagnostics: self.items,
        }
    }
}

/// The outcome of one verification pass.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Report {
    /// What was verified (graph or accelerator name).
    pub subject: String,
    /// Findings in rule-then-layer order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Whether any finding is an [`Severity::Error`].
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Number of findings at exactly `severity`.
    #[must_use]
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// The distinct rule codes that fired, sorted.
    #[must_use]
    pub fn codes(&self) -> BTreeSet<&str> {
        self.diagnostics.iter().map(|d| d.code.as_str()).collect()
    }

    /// Whether a finding with `code` is present.
    #[must_use]
    pub fn fired(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Merges another report's findings into this one (used to combine the
    /// graph pass with dataflow/accelerator passes over the same model).
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// JSON form for machine consumption (`lint --format json`).
    ///
    /// # Errors
    ///
    /// Never fails in practice; the `Result` mirrors `serde_json`.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} error(s), {} warning(s), {} info",
            self.subject,
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info)
        )?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(code: &str, severity: Severity) -> Diagnostic {
        Diagnostic {
            code: code.into(),
            severity,
            layer: Some(2),
            layer_name: Some("conv2".into()),
            message: "message".into(),
            suggestion: Some("fix it".into()),
        }
    }

    #[test]
    fn severity_orders_by_badness() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
    }

    #[test]
    fn allow_drops_findings() {
        let mut diag = Diagnostics::with_config(LintConfig {
            allow: ["AF004".to_string()].into(),
            deny: BTreeSet::new(),
        });
        diag.emit(finding("AF004", Severity::Error));
        diag.emit(finding("AF001", Severity::Error));
        let report = diag.into_report("g");
        assert_eq!(report.diagnostics.len(), 1);
        assert!(report.fired("AF001"));
        assert!(!report.fired("AF004"));
    }

    #[test]
    fn deny_escalates_warnings_only() {
        let mut diag = Diagnostics::with_config(LintConfig {
            allow: BTreeSet::new(),
            deny: ["AF005".to_string()].into(),
        });
        diag.emit(finding("AF005", Severity::Warn));
        diag.emit(finding("AF005", Severity::Info));
        let report = diag.into_report("g");
        assert_eq!(report.count(Severity::Error), 1);
        assert_eq!(report.count(Severity::Info), 1);
    }

    #[test]
    fn report_counting_and_codes() {
        let mut diag = Diagnostics::new();
        diag.emit(finding("AF001", Severity::Error));
        diag.emit(finding("AF006", Severity::Info));
        let report = diag.into_report("tiny");
        assert!(report.has_errors());
        assert_eq!(
            report.codes().into_iter().collect::<Vec<_>>(),
            ["AF001", "AF006"]
        );
    }

    #[test]
    fn display_names_layer_and_suggestion() {
        let text = finding("AF002", Severity::Warn).to_string();
        assert!(text.contains("warn[AF002]"));
        assert!(text.contains("L2 (conv2)"));
        assert!(text.contains("fix it"));
    }

    #[test]
    fn parse_codes_normalizes() {
        let set = LintConfig::parse_codes(" af003 , DF001,");
        assert!(set.contains("AF003"));
        assert!(set.contains("DF001"));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn report_json_round_trip() {
        let mut diag = Diagnostics::new();
        diag.emit(finding("AF001", Severity::Error));
        let report = diag.into_report("g");
        let json = report.to_json().expect("serializes");
        let back: Report = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(report, back);
    }
}
