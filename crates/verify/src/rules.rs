//! The graph rule catalog (`AF001`–`AF011`).
//!
//! Each rule checks one structural invariant FINN's compiler takes for
//! granted before HLS generation (see DESIGN.md §8 for the full catalog
//! with paper provenance). Rules receive the whole graph and emit every
//! violation they find — they never stop at the first one.
//!
//! The catalog deliberately re-derives facts that `CnnGraph::from_layers`
//! validates at construction: graphs also enter the system through serde
//! deserialization and on-disk archives, where no validation runs, and the
//! verifier is the backstop that keeps pruning/perf transforms honest.

use crate::accumulator::{accumulator_bounds, AccumulatorBound};
use crate::diag::{Diagnostics, Severity};
use adaflow_model::{CnnGraph, Layer, PackedFallback};

/// One whole-graph invariant check.
pub trait Rule {
    /// Stable rule code (e.g. `"AF001"`).
    fn code(&self) -> &'static str;
    /// One-line invariant statement for catalogs and `--explain` output.
    fn summary(&self) -> &'static str;
    /// Scans `graph`, emitting findings into `diag`.
    fn check(&self, graph: &CnnGraph, diag: &mut Diagnostics);
}

/// `AF001` — declared per-node shapes must equal re-derived shape
/// inference, and adjacent nodes must agree on the tensor flowing between
/// them.
pub struct ShapeChain;

impl Rule for ShapeChain {
    fn code(&self) -> &'static str {
        "AF001"
    }

    fn summary(&self) -> &'static str {
        "declared layer shapes match whole-graph shape re-inference"
    }

    fn check(&self, graph: &CnnGraph, diag: &mut Diagnostics) {
        let mut upstream = graph.input_shape();
        for node in graph.iter() {
            let at = Some((node.id.0, node.name.as_str()));
            if node.input_shape != upstream {
                diag.report(
                    self.code(),
                    Severity::Error,
                    at,
                    format!(
                        "declared input shape {} disagrees with upstream output {}",
                        node.input_shape, upstream
                    ),
                    Some("rebuild the graph through GraphBuilder to re-run shape inference".into()),
                );
            }
            match node.layer.output_shape(node.input_shape) {
                Ok(derived) if derived == node.output_shape => {}
                Ok(derived) => diag.report(
                    self.code(),
                    Severity::Error,
                    at,
                    format!(
                        "declared output shape {} but shape inference derives {}",
                        node.output_shape, derived
                    ),
                    Some("rebuild the graph through GraphBuilder to re-run shape inference".into()),
                ),
                Err(e) => diag.report(
                    self.code(),
                    Severity::Error,
                    at,
                    format!("shape inference fails on declared input: {e}"),
                    None,
                ),
            }
            upstream = node.output_shape;
        }
    }
}

/// `AF002` — layer parameters and attached weight tensors must agree
/// (nonzero dims, weight geometry matching declared geometry).
pub struct WeightGeometry;

impl Rule for WeightGeometry {
    fn code(&self) -> &'static str {
        "AF002"
    }

    fn summary(&self) -> &'static str {
        "weight tensor geometry matches declared layer parameters"
    }

    fn check(&self, graph: &CnnGraph, diag: &mut Diagnostics) {
        for node in graph.iter() {
            if let Err(e) = node.layer.validate() {
                diag.report(
                    self.code(),
                    Severity::Error,
                    Some((node.id.0, node.name.as_str())),
                    e.to_string(),
                    Some("resize the weight tensor or fix the declared dimensions".into()),
                );
            }
        }
    }
}

/// `AF003` — every stored weight must lie in the layer's quantized weight
/// domain (±1 for binary with zero excluded, narrow-range signed
/// otherwise).
pub struct WeightDomain;

impl Rule for WeightDomain {
    fn code(&self) -> &'static str {
        "AF003"
    }

    fn summary(&self) -> &'static str {
        "all weights lie in the layer's quantized weight domain"
    }

    fn check(&self, graph: &CnnGraph, diag: &mut Diagnostics) {
        for node in graph.iter() {
            let (weights, quant): (&[i8], _) = match &node.layer {
                Layer::Conv2d(c) => (c.weights.as_slice(), c.quant),
                Layer::Dense(d) => (d.weights.as_slice(), d.quant),
                _ => continue,
            };
            let domain = quant.weight_domain();
            let at = Some((node.id.0, node.name.as_str()));
            // Magnitude violations corrupt the arithmetic: Error. A zero in
            // a zero-excluding (binary) domain still executes exactly — it
            // just cannot be lowered to true binary hardware — so: Warn.
            let mut out_of_range = 0usize;
            let mut zeros = 0usize;
            let mut first = None;
            for &w in weights {
                let w = i64::from(w);
                if w < domain.min || w > domain.max {
                    out_of_range += 1;
                    first.get_or_insert(w);
                } else if w == 0 && domain.excludes_zero {
                    zeros += 1;
                }
            }
            if out_of_range > 0 {
                diag.report(
                    self.code(),
                    Severity::Error,
                    at,
                    format!(
                        "{out_of_range} of {} weights outside the {} domain [{}, {}] (first: {})",
                        weights.len(),
                        quant,
                        domain.min,
                        domain.max,
                        first.unwrap_or(0),
                    ),
                    Some(
                        "re-quantize the weights (QuantizedDomain::clamp) or widen the spec".into(),
                    ),
                );
            }
            if zeros > 0 {
                diag.report(
                    self.code(),
                    Severity::Warn,
                    at,
                    format!(
                        "{zeros} of {} weights are 0 but the {} domain excludes zero; \
                         they cannot be lowered to binary hardware",
                        weights.len(),
                        quant,
                    ),
                    Some("re-quantize zeros to ±1 or use a 2-bit weight spec".into()),
                );
            }
        }
    }
}

/// `AF004` — every per-channel threshold row must be monotonically
/// ascending; the MVTU's thresholding unit counts a prefix of met
/// thresholds and silently mis-activates on unsorted rows.
pub struct ThresholdMonotone;

impl Rule for ThresholdMonotone {
    fn code(&self) -> &'static str {
        "AF004"
    }

    fn summary(&self) -> &'static str {
        "per-channel threshold rows are monotonically ascending"
    }

    fn check(&self, graph: &CnnGraph, diag: &mut Diagnostics) {
        for node in graph.iter() {
            let Layer::MultiThreshold(t) = &node.layer else {
                continue;
            };
            let mut bad_rows = 0usize;
            let mut first = None;
            for c in 0..t.table.channels() {
                let row = t.table.row(c);
                if let Some(pos) = row.windows(2).position(|w| w[0] > w[1]) {
                    bad_rows += 1;
                    first.get_or_insert((c, pos, row[pos], row[pos + 1]));
                }
            }
            if let Some((c, pos, a, b)) = first {
                diag.report(
                    self.code(),
                    Severity::Error,
                    Some((node.id.0, node.name.as_str())),
                    format!(
                        "{bad_rows} of {} threshold rows not ascending \
                         (channel {c}: level {pos} is {a} > level {} is {b})",
                        t.table.channels(),
                        pos + 1,
                    ),
                    Some("sort each channel's thresholds ascending (ThresholdTable::from_rows enforces this)".into()),
                );
            }
        }
    }
}

/// `AF005` — a MultiThreshold must cover its producer MVTU's quantized
/// activation domain: exactly `2^act_bits - 1` levels, all reachable by
/// the producer's worst-case accumulator range.
pub struct ThresholdCoverage;

impl Rule for ThresholdCoverage {
    fn code(&self) -> &'static str {
        "AF005"
    }

    fn summary(&self) -> &'static str {
        "threshold tables cover the producer MVTU's activation domain"
    }

    fn check(&self, graph: &CnnGraph, diag: &mut Diagnostics) {
        let bounds = accumulator_bounds(graph);
        let nodes = graph.nodes();
        for (idx, node) in nodes.iter().enumerate() {
            let Layer::MultiThreshold(t) = &node.layer else {
                continue;
            };
            // FINN folds the threshold into the immediately preceding MVTU.
            let Some(prev) = idx.checked_sub(1).map(|i| &nodes[i]) else {
                continue;
            };
            let quant = match &prev.layer {
                Layer::Conv2d(c) => c.quant,
                Layer::Dense(d) => d.quant,
                _ => continue,
            };
            let at = Some((node.id.0, node.name.as_str()));
            let expected = quant.threshold_levels();
            if t.table.levels() != expected {
                diag.report(
                    self.code(),
                    Severity::Error,
                    at,
                    format!(
                        "table has {} levels but the {} activation domain needs {expected} \
                         (2^act_bits - 1)",
                        t.table.levels(),
                        quant,
                    ),
                    Some(format!(
                        "rebuild the table with {expected} levels per channel"
                    )),
                );
                continue;
            }
            // Reachability: thresholds beyond the producer's worst-case
            // accumulator range are dead levels — the activation can never
            // reach those counts.
            let Some(bound) = bounds.iter().find(|b| b.layer == prev.id.0) else {
                continue;
            };
            let worst = bound.worst_abs;
            let mut dead = 0usize;
            for c in 0..t.table.channels() {
                let row = t.table.row(c);
                if row
                    .iter()
                    .any(|&th| i128::from(th) > worst || i128::from(th) < -worst)
                {
                    dead += 1;
                }
            }
            if dead > 0 {
                diag.report(
                    self.code(),
                    Severity::Warn,
                    at,
                    format!(
                        "{dead} of {} channels have thresholds outside the producer's \
                         reachable accumulator range ±{worst}; those levels can never fire",
                        t.table.channels(),
                    ),
                    Some("re-calibrate the thresholds against the accumulator range".into()),
                );
            }
        }
    }
}

/// `AF006` — the `i32` MVTU accumulator must provably not overflow:
/// `fan_in · max|w| · max|a| ≤ i32::MAX`. Emits the computed margin for
/// every MVTU layer as an Info finding, and an Error where the bound fails.
pub struct AccumulatorBounds;

impl AccumulatorBounds {
    fn describe(b: &AccumulatorBound) -> String {
        format!(
            "worst-case accumulator ±{} (fan-in {} × max|w| {} × max|a| {}), \
             actual weights reach ±{}",
            b.worst_abs, b.fan_in, b.max_weight, b.max_activation, b.tight_abs,
        )
    }
}

impl Rule for AccumulatorBounds {
    fn code(&self) -> &'static str {
        "AF006"
    }

    fn summary(&self) -> &'static str {
        "i32 accumulators provably cannot overflow (fan-in × max|w| × max|a|)"
    }

    fn check(&self, graph: &CnnGraph, diag: &mut Diagnostics) {
        for b in accumulator_bounds(graph) {
            let name = b.name.clone();
            if b.fits_i32() {
                diag.report(
                    self.code(),
                    Severity::Info,
                    Some((b.layer, name.as_str())),
                    format!(
                        "{}: {} spare bits, {:.0}x headroom below i32::MAX",
                        Self::describe(&b),
                        b.margin_bits(),
                        b.headroom(),
                    ),
                    None,
                );
            } else {
                diag.report(
                    self.code(),
                    Severity::Error,
                    Some((b.layer, name.as_str())),
                    format!(
                        "{}: exceeds i32::MAX by {:.1}x",
                        Self::describe(&b),
                        b.worst_abs as f64 / f64::from(i32::MAX),
                    ),
                    Some(
                        "reduce fan-in or quantization bit widths, or widen the accumulator type"
                            .into(),
                    ),
                );
            }
        }
    }
}

/// `AF007` — pruning consistency: filter removal at one layer must be
/// propagated to every consumer — the following threshold's rows, the next
/// convolution's input channels, and the flattened dense layer's input
/// features.
pub struct ChannelConsistency;

impl Rule for ChannelConsistency {
    fn code(&self) -> &'static str {
        "AF007"
    }

    fn summary(&self) -> &'static str {
        "pruned channel counts propagate to thresholds and downstream layers"
    }

    fn check(&self, graph: &CnnGraph, diag: &mut Diagnostics) {
        let nodes = graph.nodes();
        // Channel count produced by the most recent conv (or the input),
        // tracked at the layer-parameter level — independent of the
        // declared node shapes AF001 checks.
        let mut channels = graph.input_shape().channels;
        // Spatial extent at the producing conv, for the flatten into dense.
        let mut spatial = graph.input_shape().spatial();
        let mut features: Option<usize> = None; // Some(n) once flattened
        for node in nodes {
            let at = Some((node.id.0, node.name.as_str()));
            match &node.layer {
                Layer::Conv2d(c) => {
                    if c.in_channels != channels {
                        diag.report(
                            self.code(),
                            Severity::Error,
                            at,
                            format!(
                                "consumes {} input channels but the upstream producer emits \
                                 {channels}",
                                c.in_channels,
                            ),
                            Some(
                                "propagate the upstream filter removal with \
                                 ConvWeights::without_input_channels"
                                    .into(),
                            ),
                        );
                    }
                    channels = c.out_channels;
                    spatial = node.output_shape.spatial();
                    features = None;
                }
                Layer::MultiThreshold(t) => {
                    let expect = features.unwrap_or(channels);
                    if t.channels != expect {
                        diag.report(
                            self.code(),
                            Severity::Error,
                            at,
                            format!(
                                "thresholds {} channels but the producer emits {expect}",
                                t.channels,
                            ),
                            Some(
                                "remove the pruned channels' rows with \
                                 ThresholdTable::without_channels"
                                    .into(),
                            ),
                        );
                    }
                }
                Layer::Dense(d) => {
                    let expect = features.unwrap_or(channels * spatial);
                    if d.in_features != expect {
                        diag.report(
                            self.code(),
                            Severity::Error,
                            at,
                            format!(
                                "consumes {} input features but the upstream producer emits \
                                 {expect}",
                                d.in_features,
                            ),
                            Some(
                                "propagate the upstream removal with \
                                 DenseWeights::without_input_features"
                                    .into(),
                            ),
                        );
                    }
                    features = Some(d.out_features);
                }
                Layer::MaxPool2d(_) => {
                    spatial = node.output_shape.spatial();
                }
                Layer::LabelSelect(_) => {}
            }
        }
    }
}

/// `AF008` — dataflow executability: MVTU outputs (raw accumulators) must
/// be re-quantized by a MultiThreshold before pooling or the next MVTU,
/// thresholds must not re-quantize already-quantized activations, and the
/// graph should terminate in a LabelSelect fed by classifier accumulators.
pub struct DataflowStructure;

impl Rule for DataflowStructure {
    fn code(&self) -> &'static str {
        "AF008"
    }

    fn summary(&self) -> &'static str {
        "accumulator/activation alternation is executable by the MVTU dataflow"
    }

    fn check(&self, graph: &CnnGraph, diag: &mut Diagnostics) {
        let mut accum = false; // true while the value is raw accumulators
        for node in graph.iter() {
            let at = Some((node.id.0, node.name.as_str()));
            match &node.layer {
                Layer::Conv2d(_) | Layer::Dense(_) => {
                    if accum {
                        diag.report(
                            self.code(),
                            Severity::Error,
                            at,
                            "consumes raw accumulators from the previous MVTU",
                            Some("insert a MultiThreshold between the two MVTU layers".into()),
                        );
                    }
                    accum = true;
                }
                Layer::MultiThreshold(_) => {
                    if !accum {
                        diag.report(
                            self.code(),
                            Severity::Error,
                            at,
                            "re-thresholds already-quantized activations",
                            Some("remove the redundant MultiThreshold".into()),
                        );
                    }
                    accum = false;
                }
                Layer::MaxPool2d(_) => {
                    if accum {
                        diag.report(
                            self.code(),
                            Severity::Error,
                            at,
                            "pools raw accumulators",
                            Some("insert a MultiThreshold before the pooling layer".into()),
                        );
                    }
                }
                Layer::LabelSelect(_) => {
                    if !accum {
                        diag.report(
                            self.code(),
                            Severity::Error,
                            at,
                            "label-select needs classifier accumulators, not quantized \
                             activations",
                            Some("feed the classifier MVTU's accumulators directly".into()),
                        );
                    }
                    accum = false;
                }
            }
        }
        match graph.nodes().last().map(|n| &n.layer) {
            Some(Layer::LabelSelect(_)) | None => {}
            Some(other) => diag.report(
                self.code(),
                Severity::Warn,
                graph.nodes().last().map(|n| (n.id.0, n.name.as_str())),
                format!(
                    "graph ends in {} instead of a LabelSelect classifier",
                    other.kind()
                ),
                Some("append a label_select over the class logits".into()),
            ),
        }
    }
}

/// `AF009` — packed-kernel eligibility: the inference engine's bitplane
/// popcount kernels (and the FINN XNOR/AND-popcount MVTU they model) are
/// only faithful when a layer's effective domains stay within ≤2-bit
/// weights (`{-1, 0, +1}`) and ≤2-bit incoming activations (`0..=3`).
/// Reports each MVTU's eligibility as an Info finding; warns when a layer
/// *declares* packed-friendly ≤2-bit quantization but the upstream
/// threshold table implies wider activations (or its stored weights stray
/// outside `±1`) — those layers silently pay the GEMM fallback.
pub struct PackedEligibility;

impl Rule for PackedEligibility {
    fn code(&self) -> &'static str {
        "AF009"
    }

    fn summary(&self) -> &'static str {
        "MVTU domains fit the packed popcount-kernel contract (≤2-bit weights and activations)"
    }

    fn check(&self, graph: &CnnGraph, diag: &mut Diagnostics) {
        for d in adaflow_model::mvtu_domains(graph) {
            let at = Some((d.layer, d.name.as_str()));
            match &d.fallback {
                None => diag.report(
                    self.code(),
                    Severity::Info,
                    at,
                    format!(
                        "packed-eligible: W{} weights, {}-plane activations ≤{} over fan-in {}",
                        d.weight_bits, d.act_in_planes, d.act_in_max, d.fan_in
                    ),
                    None,
                ),
                Some(fb @ PackedFallback::ActivationsTooWide(_)) if d.act_from_input => {
                    diag.report(
                        self.code(),
                        Severity::Info,
                        at,
                        format!("GEMM fallback (expected for the input layer): {fb}"),
                        None,
                    );
                }
                Some(fb @ PackedFallback::WeightBitsTooWide(_)) => diag.report(
                    self.code(),
                    Severity::Info,
                    at,
                    format!("GEMM fallback: {fb}"),
                    None,
                ),
                // A declared >2-bit activation domain is legitimately
                // ineligible — nothing to fix.
                Some(fb @ PackedFallback::ActivationsTooWide(_)) if d.act_bits > 2 => diag.report(
                    self.code(),
                    Severity::Info,
                    at,
                    format!("GEMM fallback: {fb}"),
                    None,
                ),
                // An inner layer declaring ≤2-bit quantization that still
                // misses the contract is a calibration/model bug worth
                // flagging: the engine quietly loses the packed speedup.
                Some(fb) => diag.report(
                    self.code(),
                    Severity::Warn,
                    at,
                    format!(
                        "declares W{}A{} but misses the packed contract: {fb}",
                        d.weight_bits, d.act_bits
                    ),
                    Some(
                        "recalibrate the upstream threshold table (or fix the stored weights) \
                         so the packed kernels can engage"
                            .into(),
                    ),
                ),
            }
        }
    }
}

/// The full graph rule catalog, in code order.
#[must_use]
pub fn catalog() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(ShapeChain),
        Box::new(WeightGeometry),
        Box::new(WeightDomain),
        Box::new(ThresholdMonotone),
        Box::new(ThresholdCoverage),
        Box::new(AccumulatorBounds),
        Box::new(ChannelConsistency),
        Box::new(DataflowStructure),
        Box::new(PackedEligibility),
        Box::new(crate::interval::ExactAccumulatorIntervals),
        Box::new(crate::interval::ThresholdReachability),
    ]
}
