//! FIFO deadlock-freedom analysis (`DF005`).
//!
//! A streaming accelerator with bounded FIFOs is a **timed marked graph**:
//! modules are transitions, FIFOs are places, and a FIFO of capacity `d`
//! from producer `p` to consumer `c` contributes two edges — a *data* edge
//! `p → c` carrying 0 initial tokens (nothing buffered at reset) and a
//! *space* edge `c → p` carrying `d` tokens (all slots free at reset).
//! A transition fires when every incoming edge holds a token; firing moves
//! one token along every adjacent edge.
//!
//! The classic liveness theorem for marked graphs (Commoner/Murata): the
//! system is deadlock-free **iff every directed cycle carries at least one
//! initial token** — equivalently, iff the subgraph of zero-token edges is
//! acyclic. Token counts on a cycle are invariant under firing, so a
//! zero-token cycle can never fire any of its transitions: each waits on
//! the previous forever. Conversely, if every cycle is marked, some
//! transition is always enabled.
//!
//! [`check_liveness`] runs a DFS over the zero-token subgraph. When it
//! finds a zero-token cycle it reconstructs the concrete counterexample: a
//! token trace at `t = 0` showing each module in the cycle blocked on the
//! next — the schedule prefix that can never be extended. `DF003`'s FIFO
//! sizing consumes [`required_edge_capacity`], the inverse of the rate
//! analysis' pair-cycle bound, so "the sizing heuristic" and "the proof
//! obligation" are the same arithmetic.

/// One module (transition) of the stream graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamNode {
    /// Module name.
    pub name: String,
    /// Cycles per frame (annotates traces; liveness itself is untimed).
    pub cycles: u64,
}

/// One edge of the marked graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamEdge {
    /// Producer node index.
    pub from: usize,
    /// Consumer node index.
    pub to: usize,
    /// Initial tokens (buffered items on data edges, free slots on space
    /// edges).
    pub tokens: usize,
    /// Whether this is a data edge (`p → c`) or a space edge (`c → p`).
    pub is_data: bool,
}

/// A timed marked graph modelling a streaming accelerator.
#[derive(Debug, Clone, Default)]
pub struct TimedMarkedGraph {
    nodes: Vec<StreamNode>,
    edges: Vec<StreamEdge>,
}

/// Outcome of the deadlock-freedom analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum Liveness {
    /// Every directed cycle carries at least one token: no reachable
    /// marking deadlocks.
    Live {
        /// Smallest token count over any FIFO (the tightest margin).
        min_capacity: usize,
        /// Number of zero-token edges examined by the acyclicity check.
        zero_token_edges: usize,
    },
    /// A zero-token cycle exists: the modules on it block each other
    /// forever from reset.
    Deadlock {
        /// Node indices around the unmarked cycle, in blocking order.
        cycle: Vec<usize>,
        /// Concrete counterexample: one line per blocked module at `t = 0`.
        trace: Vec<String>,
    },
}

impl Liveness {
    /// Whether the graph is deadlock-free.
    #[must_use]
    pub fn is_live(&self) -> bool {
        matches!(self, Liveness::Live { .. })
    }
}

impl TimedMarkedGraph {
    /// An empty graph.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a module; returns its index.
    pub fn add_node(&mut self, name: impl Into<String>, cycles: u64) -> usize {
        self.nodes.push(StreamNode {
            name: name.into(),
            cycles,
        });
        self.nodes.len() - 1
    }

    /// Adds a FIFO of capacity `capacity` from `from` to `to`: a zero-token
    /// data edge plus a `capacity`-token space edge.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_fifo(&mut self, from: usize, to: usize, capacity: usize) {
        assert!(
            from < self.nodes.len() && to < self.nodes.len(),
            "fifo endpoint out of range"
        );
        self.edges.push(StreamEdge {
            from,
            to,
            tokens: 0,
            is_data: true,
        });
        self.edges.push(StreamEdge {
            from: to,
            to: from,
            tokens: capacity,
            is_data: false,
        });
    }

    /// The modules.
    #[must_use]
    pub fn nodes(&self) -> &[StreamNode] {
        &self.nodes
    }

    /// All edges (data and space).
    #[must_use]
    pub fn edges(&self) -> &[StreamEdge] {
        &self.edges
    }

    /// Builds the marked graph of a linear pipeline: `stages[i]` feeds
    /// `stages[i+1]` through a FIFO of capacity `capacities[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `capacities.len() + 1 != stages.len()` for a non-empty
    /// chain.
    #[must_use]
    pub fn chain(stages: &[(String, u64)], capacities: &[usize]) -> Self {
        assert!(
            stages.is_empty() || capacities.len() + 1 == stages.len(),
            "need exactly one capacity per adjacent stage pair"
        );
        let mut g = Self::new();
        for (name, cycles) in stages {
            g.add_node(name.clone(), *cycles);
        }
        for (i, &cap) in capacities.iter().enumerate() {
            g.add_fifo(i, i + 1, cap);
        }
        g
    }

    /// Checks deadlock-freedom: DFS for a cycle in the zero-token subgraph.
    #[must_use]
    pub fn check_liveness(&self) -> Liveness {
        // Colors of the iterative three-color DFS below; a back edge to a
        // gray node closes a zero-token cycle.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let n = self.nodes.len();
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut zero_token_edges = 0usize;
        for e in &self.edges {
            if e.tokens == 0 {
                succ[e.from].push(e.to);
                zero_token_edges += 1;
            }
        }
        let mut color = vec![Color::White; n];
        let mut parent = vec![usize::MAX; n];
        for root in 0..n {
            if color[root] != Color::White {
                continue;
            }
            // Stack of (node, next successor index to try).
            let mut stack = vec![(root, 0usize)];
            color[root] = Color::Gray;
            while let Some(&(node, next)) = stack.last() {
                if next < succ[node].len() {
                    stack.last_mut().expect("just peeked").1 += 1;
                    let t = succ[node][next];
                    match color[t] {
                        Color::White => {
                            color[t] = Color::Gray;
                            parent[t] = node;
                            stack.push((t, 0));
                        }
                        Color::Gray => {
                            // Reconstruct the cycle t → ... → node → t.
                            let mut cycle = vec![node];
                            let mut cur = node;
                            while cur != t {
                                cur = parent[cur];
                                cycle.push(cur);
                            }
                            cycle.reverse();
                            let trace = self.deadlock_trace(&cycle);
                            return Liveness::Deadlock { cycle, trace };
                        }
                        Color::Black => {}
                    }
                } else {
                    color[node] = Color::Black;
                    stack.pop();
                }
            }
        }
        Liveness::Live {
            min_capacity: self
                .edges
                .iter()
                .filter(|e| !e.is_data)
                .map(|e| e.tokens)
                .min()
                .unwrap_or(usize::MAX),
            zero_token_edges,
        }
    }

    /// The `t = 0` token trace around an unmarked cycle: why each module is
    /// blocked, and on whom.
    fn deadlock_trace(&self, cycle: &[usize]) -> Vec<String> {
        let mut trace = Vec::with_capacity(cycle.len() + 1);
        trace.push(format!(
            "t=0: no module on the cycle can ever fire — every edge below holds 0 tokens \
             and firing preserves cycle token counts ({} modules involved)",
            cycle.len()
        ));
        for (k, &a) in cycle.iter().enumerate() {
            let b = cycle[(k + 1) % cycle.len()];
            // The zero-token edge a → b blocks b. Name the FIFO it models.
            let blocking = self
                .edges
                .iter()
                .find(|e| e.from == a && e.to == b && e.tokens == 0);
            let why = match blocking {
                Some(e) if e.is_data => format!(
                    "'{}' is blocked: its input FIFO from '{}' is empty \
                     (0 tokens buffered) and '{}' never produces",
                    self.nodes[b].name, self.nodes[a].name, self.nodes[a].name
                ),
                Some(_) => format!(
                    "'{}' is blocked: its output FIFO toward '{}' has capacity 0 \
                     (no free slot) and '{}' never consumes",
                    self.nodes[b].name, self.nodes[a].name, self.nodes[a].name
                ),
                None => format!("'{}' waits on '{}'", self.nodes[b].name, self.nodes[a].name),
            };
            trace.push(format!("t=0: {why}"));
        }
        trace
    }
}

/// Minimal FIFO capacity on the edge between two adjacent stages that keeps
/// the pair cycle's mean at or below `target_ii`:
/// `d = max(1, ⌈(c_up + c_down) / target_ii⌉)`. The inverse of the rate
/// analysis' pair-cycle bound — with this capacity on every edge, the
/// steady-state II is exactly `max_i c_i`.
#[must_use]
pub fn required_edge_capacity(c_up: u64, c_down: u64, target_ii: u64) -> usize {
    if target_ii == 0 {
        return 1;
    }
    ((c_up + c_down).div_ceil(target_ii) as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(cycles: &[u64], caps: &[usize]) -> TimedMarkedGraph {
        let stages: Vec<(String, u64)> = cycles
            .iter()
            .enumerate()
            .map(|(i, &c)| (format!("m{i}"), c))
            .collect();
        TimedMarkedGraph::chain(&stages, caps)
    }

    #[test]
    fn positive_capacities_are_live() {
        let g = chain(&[5, 40, 5], &[1, 1]);
        match g.check_liveness() {
            Liveness::Live {
                min_capacity,
                zero_token_edges,
            } => {
                assert_eq!(min_capacity, 1);
                assert_eq!(zero_token_edges, 2, "only the data edges are unmarked");
            }
            Liveness::Deadlock { trace, .. } => panic!("spurious deadlock: {trace:?}"),
        }
    }

    #[test]
    fn zero_capacity_fifo_deadlocks_with_trace() {
        let g = chain(&[5, 40, 5], &[1, 0]);
        match g.check_liveness() {
            Liveness::Deadlock { cycle, trace } => {
                assert_eq!(cycle.len(), 2, "producer/consumer two-cycle");
                assert!(cycle.contains(&1) && cycle.contains(&2));
                // The trace names both directions of the block.
                let joined = trace.join("\n");
                assert!(joined.contains("m1"), "{joined}");
                assert!(joined.contains("m2"), "{joined}");
                assert!(joined.contains("capacity 0"), "{joined}");
                assert!(joined.contains("empty"), "{joined}");
            }
            Liveness::Live { .. } => panic!("capacity-0 FIFO must deadlock"),
        }
    }

    #[test]
    fn single_module_has_no_cycles() {
        let g = chain(&[7], &[]);
        assert!(g.check_liveness().is_live());
    }

    #[test]
    fn handmade_zero_token_ring_deadlocks() {
        // Three modules in a ring of empty data edges (no space edges):
        // the classic circular wait.
        let mut g = TimedMarkedGraph::new();
        let a = g.add_node("a", 1);
        let b = g.add_node("b", 1);
        let c = g.add_node("c", 1);
        g.edges.push(StreamEdge {
            from: a,
            to: b,
            tokens: 0,
            is_data: true,
        });
        g.edges.push(StreamEdge {
            from: b,
            to: c,
            tokens: 0,
            is_data: true,
        });
        g.edges.push(StreamEdge {
            from: c,
            to: a,
            tokens: 0,
            is_data: true,
        });
        match g.check_liveness() {
            Liveness::Deadlock { cycle, trace } => {
                assert_eq!(cycle.len(), 3);
                assert_eq!(trace.len(), 4, "preamble + one line per module");
            }
            Liveness::Live { .. } => panic!("ring must deadlock"),
        }
    }

    #[test]
    fn marked_ring_is_live() {
        // Same ring, but one edge carries a token: every cycle is marked.
        let mut g = TimedMarkedGraph::new();
        let a = g.add_node("a", 1);
        let b = g.add_node("b", 1);
        let c = g.add_node("c", 1);
        g.edges.push(StreamEdge {
            from: a,
            to: b,
            tokens: 0,
            is_data: true,
        });
        g.edges.push(StreamEdge {
            from: b,
            to: c,
            tokens: 0,
            is_data: true,
        });
        g.edges.push(StreamEdge {
            from: c,
            to: a,
            tokens: 1,
            is_data: true,
        });
        assert!(g.check_liveness().is_live());
    }

    #[test]
    fn required_capacity_inverts_pair_bound() {
        // CNV's worst adjacent pair: swu2 (56448) + mvtu2 (225792) against
        // the 225792-cycle bottleneck → depth 2.
        assert_eq!(required_edge_capacity(56_448, 225_792, 225_792), 2);
        // Balanced tiny pairs need the minimum useful depth... which still
        // costs II = 2·c at depth 1 (pair bound), proven by rate analysis.
        assert_eq!(required_edge_capacity(10, 10, 20), 1);
        assert_eq!(required_edge_capacity(10, 10, 10), 2);
        assert_eq!(required_edge_capacity(5, 40, 40), 2);
        assert_eq!(required_edge_capacity(0, 0, 7), 1);
        assert_eq!(required_edge_capacity(3, 4, 0), 1);
    }
}
