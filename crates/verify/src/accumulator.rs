//! Worst-case accumulator bounds analysis.
//!
//! FINN sizes each MVTU's accumulator from the layer's fan-in and the
//! quantized weight/activation domains before HLS generation; an undersized
//! accumulator silently wraps and corrupts every downstream activation. The
//! inference engine in `adaflow-nn` commits to `i32` accumulators, so this
//! module proves, per MVTU layer, that
//!
//! ```text
//! fan_in · max|w| · max|a|  ≤  i32::MAX
//! ```
//!
//! and reports the exact margin. Two bounds are computed:
//!
//! * the **domain bound** uses the quantized weight domain's largest
//!   magnitude — it holds for *any* weight assignment the spec admits
//!   (retraining cannot break it), and is the bound the overflow rule
//!   judges;
//! * the **tight bound** uses the actual weights (`max_row Σ|w| · max|a|`),
//!   the margin a calibrated deployment really has.
//!
//! The activation maximum is tracked through the graph: the network input
//! is an 8-bit pixel stream (`max = 255`), and every `MultiThreshold`
//! re-quantizes to `0..=levels`, so inner layers see far smaller inputs.

use adaflow_model::{CnnGraph, Layer};

/// Largest value an input activation can take: the engine consumes `u8`
/// pixel streams, so the first MVTU accumulates against `0..=255`.
pub const INPUT_ACT_MAX: i64 = u8::MAX as i64;

/// Worst-case accumulator analysis of one MVTU layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccumulatorBound {
    /// Layer index in the graph.
    pub layer: usize,
    /// Layer name.
    pub name: String,
    /// Dot-product length: `k²·ch_in` for conv, `in_features` for dense.
    pub fan_in: usize,
    /// Largest weight magnitude the quantized domain admits.
    pub max_weight: i64,
    /// Largest activation value reaching this layer.
    pub max_activation: i64,
    /// Domain bound: `fan_in · max|w| · max|a|`.
    pub worst_abs: i128,
    /// Tight bound from the actual weights: `max over outputs of
    /// Σ|w| · max|a|`.
    pub tight_abs: i128,
}

impl AccumulatorBound {
    /// Whether the domain bound provably fits an `i32` accumulator.
    #[must_use]
    pub fn fits_i32(&self) -> bool {
        self.worst_abs <= i128::from(i32::MAX)
    }

    /// Spare accumulator bits under the domain bound: `31 - bits(worst)`.
    /// Negative when the bound overflows.
    #[must_use]
    pub fn margin_bits(&self) -> i32 {
        31 - significant_bits(self.worst_abs)
    }

    /// Headroom factor `i32::MAX / worst` under the domain bound.
    #[must_use]
    pub fn headroom(&self) -> f64 {
        i32::MAX as f64 / self.worst_abs as f64
    }
}

/// Number of bits needed to represent `v ≥ 0` (0 for v = 0).
fn significant_bits(v: i128) -> i32 {
    (128 - v.leading_zeros()) as i32
}

/// Computes the worst-case accumulator bound of every MVTU layer, in
/// dataflow order. Non-MVTU layers contribute nothing; `MultiThreshold`
/// layers reset the tracked activation maximum to their level count.
#[must_use]
pub fn accumulator_bounds(graph: &CnnGraph) -> Vec<AccumulatorBound> {
    let mut bounds = Vec::new();
    let mut act_max = INPUT_ACT_MAX;
    for node in graph.iter() {
        match &node.layer {
            Layer::Conv2d(c) => {
                let fan_in = c.kernel * c.kernel * c.in_channels;
                let max_w = domain_abs_max(c.quant.weight_domain());
                let tight = (0..c.weights.out_channels())
                    .map(|o| {
                        c.weights
                            .filter(o)
                            .iter()
                            .map(|&w| i128::from(w).unsigned_abs())
                            .sum::<u128>()
                    })
                    .max()
                    .unwrap_or(0);
                bounds.push(AccumulatorBound {
                    layer: node.id.0,
                    name: node.name.clone(),
                    fan_in,
                    max_weight: max_w,
                    max_activation: act_max,
                    worst_abs: fan_in as i128 * i128::from(max_w) * i128::from(act_max),
                    tight_abs: tight as i128 * i128::from(act_max),
                });
                // Until a threshold re-quantizes, the value is an
                // accumulator, not an activation; the default covers the
                // (invalid) MVTU-feeds-MVTU case without underestimating.
                act_max = c.quant.act_domain().max;
            }
            Layer::Dense(d) => {
                let fan_in = d.in_features;
                let max_w = domain_abs_max(d.quant.weight_domain());
                let tight = (0..d.weights.out_features())
                    .map(|o| {
                        d.weights
                            .row(o)
                            .iter()
                            .map(|&w| i128::from(w).unsigned_abs())
                            .sum::<u128>()
                    })
                    .max()
                    .unwrap_or(0);
                bounds.push(AccumulatorBound {
                    layer: node.id.0,
                    name: node.name.clone(),
                    fan_in,
                    max_weight: max_w,
                    max_activation: act_max,
                    worst_abs: fan_in as i128 * i128::from(max_w) * i128::from(act_max),
                    tight_abs: tight as i128 * i128::from(act_max),
                });
                act_max = d.quant.act_domain().max;
            }
            Layer::MultiThreshold(t) => {
                act_max = t.table.levels() as i64;
            }
            Layer::MaxPool2d(_) | Layer::LabelSelect(_) => {}
        }
    }
    bounds
}

fn domain_abs_max(d: adaflow_model::QuantizedDomain) -> i64 {
    d.min.unsigned_abs().max(d.max.unsigned_abs()) as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaflow_model::prelude::*;

    #[test]
    fn tiny_bounds_track_activation_domain() {
        let g = topology::tiny(QuantSpec::w2a2(), 4).expect("builds");
        let bounds = accumulator_bounds(&g);
        // conv1, conv2, fc1.
        assert_eq!(bounds.len(), 3);
        // conv1 sees raw 8-bit pixels: 3·3·1 fan-in, |w| ≤ 1, act ≤ 255.
        assert_eq!(bounds[0].fan_in, 9);
        assert_eq!(bounds[0].max_activation, INPUT_ACT_MAX);
        assert_eq!(bounds[0].worst_abs, 9 * 255);
        // conv2 sees thresholded activations 0..=3.
        assert_eq!(bounds[1].max_activation, 3);
        assert_eq!(bounds[1].worst_abs, (3 * 3 * 8) as i128 * 3);
        assert!(bounds.iter().all(AccumulatorBound::fits_i32));
    }

    #[test]
    fn tight_bound_never_exceeds_domain_bound() {
        let g = topology::cnv_w2a2_cifar10().expect("builds");
        for b in accumulator_bounds(&g) {
            assert!(b.tight_abs <= b.worst_abs, "{}: tight > worst", b.name);
            assert!(b.fits_i32());
            assert!(b.margin_bits() > 0);
        }
    }

    #[test]
    fn margin_bits_matches_manual_log() {
        let b = AccumulatorBound {
            layer: 0,
            name: "x".into(),
            fan_in: 1,
            max_weight: 1,
            max_activation: 1,
            worst_abs: 1 << 20,
            tight_abs: 1,
        };
        assert_eq!(b.margin_bits(), 31 - 21);
        assert!(b.headroom() > 2000.0);
    }

    #[test]
    fn oversized_dense_overflows() {
        let g = GraphBuilder::new("overflow", TensorShape::flat(1 << 22))
            .dense(Dense::new(1 << 22, 1, QuantSpec::new(8, 8)))
            .label_select(1)
            .build()
            .expect("builds");
        let bounds = accumulator_bounds(&g);
        assert_eq!(bounds.len(), 1);
        // 2^22 · 127 · 255 ≈ 1.36e11 > i32::MAX.
        assert!(!bounds[0].fits_i32());
        assert!(bounds[0].margin_bits() < 0);
    }
}
