//! Exact value-interval / accumulator-bitwidth analysis (`AF010`/`AF011`).
//!
//! [`accumulator_bounds`](crate::accumulator) answers "can any weight
//! assignment the quantized domain admits overflow the i32 accumulator?"
//! That domain bound is retraining-proof but deliberately loose: it
//! multiplies the full fan-in by the largest weight magnitude, as if every
//! tap pulled in the same direction at the activation maximum. This module
//! runs the precise counterpart on the *actual* stored weights: an abstract
//! interpretation over per-channel value intervals, propagated through the
//! whole graph with the shared worklist solver from [`crate::fixpoint`].
//!
//! The abstract domain is a vector of integer intervals, one per channel of
//! the tensor flowing along the edge (per feature once flattened). Transfer
//! functions:
//!
//! * **input** — every pixel channel starts at `[0, 255]` (u8 stream);
//! * **conv/dense** — per output channel, the interval of the dot product:
//!   each tap contributes `[w·lo, w·hi]` for `w ≥ 0` and `[w·hi, w·lo]`
//!   for `w < 0`, summed exactly in `i128`; zero padding extends a tap's
//!   interval to include 0;
//! * **multi-threshold** — the activation is a count of met thresholds,
//!   monotone in the accumulator, so the output interval is exactly
//!   `[apply(lo), apply(hi)]` per channel;
//! * **max-pool** — `max` over values drawn from `[lo, hi]` stays in
//!   `[lo, hi]`, and both endpoints remain attainable: identity;
//! * **label-select** — an argmax index in `[0, classes-1]`.
//!
//! Every transfer is exact (the result interval is the tightest one
//! containing all concretely reachable values under the per-channel
//! abstraction), so the analysis is sound by construction and never looser
//! than the AF006 domain bound — a fact the test suite pins down per
//! builtin model. The widening operator jumps a still-growing interval
//! straight to the layer's conservative domain cap (the AF006-style bound),
//! so widened chains stabilize in one step; on today's feed-forward chains
//! widening never actually triggers.

use crate::diag::{Diagnostics, Severity};
use crate::fixpoint::{self, Lattice};
use adaflow_model::{CnnGraph, Layer};

/// A closed integer interval `[lo, hi]`, kept in `i128` so that even the
/// pathological AF006 overflow fixtures (≈ 1.4e11) stay exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Smallest reachable value.
    pub lo: i128,
    /// Largest reachable value.
    pub hi: i128,
}

impl Interval {
    /// The interval containing exactly `v`.
    #[must_use]
    pub const fn point(v: i128) -> Self {
        Self { lo: v, hi: v }
    }

    /// `[lo, hi]`; panics in debug builds when `lo > hi`.
    #[must_use]
    pub fn new(lo: i128, hi: i128) -> Self {
        debug_assert!(lo <= hi, "interval [{lo}, {hi}] is empty");
        Self { lo, hi }
    }

    /// Whether `v` lies in the interval.
    #[must_use]
    pub fn contains(&self, v: i128) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Convex hull of two intervals.
    #[must_use]
    pub fn hull(&self, other: &Self) -> Self {
        Self {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Largest absolute value in the interval.
    #[must_use]
    pub fn abs_max(&self) -> i128 {
        self.lo.unsigned_abs().max(self.hi.unsigned_abs()) as i128
    }

    /// Whether every value fits the engine's `i32` accumulator.
    #[must_use]
    pub fn fits_i32(&self) -> bool {
        self.lo >= i128::from(i32::MIN) && self.hi <= i128::from(i32::MAX)
    }

    /// Minimal signed two's-complement width representing every value:
    /// the smallest `b ≥ 1` with `-2^(b-1) ≤ lo` and `hi ≤ 2^(b-1) - 1`.
    #[must_use]
    pub fn required_bits(&self) -> u32 {
        (1..=127)
            .find(|&b| {
                let half = 1i128 << (b - 1);
                self.lo >= -half && self.hi < half
            })
            .unwrap_or(128)
    }
}

/// Abstract value of one graph edge: unreachable, or one interval per
/// channel of the flowing tensor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbsVal {
    /// Nothing has reached this edge yet (the lattice bottom).
    Bottom,
    /// Per-channel reachable-value intervals.
    Channels(Vec<Interval>),
}

impl Lattice for AbsVal {
    fn join(&self, other: &Self) -> Self {
        match (self, other) {
            (AbsVal::Bottom, x) | (x, AbsVal::Bottom) => x.clone(),
            (AbsVal::Channels(a), AbsVal::Channels(b)) => {
                debug_assert_eq!(a.len(), b.len(), "joining mismatched channel counts");
                AbsVal::Channels(a.iter().zip(b.iter()).map(|(x, y)| x.hull(y)).collect())
            }
        }
    }
}

/// Exact accumulator analysis of one MVTU (conv or dense) layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MvtuInterval {
    /// Layer index in the graph.
    pub layer: usize,
    /// Layer name.
    pub name: String,
    /// Reachable accumulator interval per output channel (feature for
    /// dense), under the actual stored weights.
    pub per_channel: Vec<Interval>,
    /// Hull over all output channels.
    pub acc: Interval,
    /// Minimal signed accumulator width for `acc`.
    pub required_bits: u32,
    /// Spare bits in the engine's 32-bit accumulator (negative when the
    /// interval overflows i32).
    pub spare_bits: i32,
    /// The AF006 domain bound `fan_in · max|w| · max|a|`, for tightness
    /// comparison.
    pub domain_worst_abs: i128,
}

impl MvtuInterval {
    /// Whether every reachable accumulator value fits `i32`.
    #[must_use]
    pub fn fits_i32(&self) -> bool {
        self.acc.fits_i32()
    }
}

/// Reachability findings for one `MultiThreshold` layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThresholdLiveness {
    /// Layer index in the graph.
    pub layer: usize,
    /// Layer name.
    pub name: String,
    /// Threshold levels per channel.
    pub levels: usize,
    /// Total inert thresholds across all channels: levels that never
    /// discriminate because the incoming accumulator interval never
    /// crosses them (always met, or never met).
    pub inert_thresholds: usize,
    /// Channels with at least one inert threshold.
    pub channels_with_inert: usize,
    /// Channels whose output is constant over the whole reachable input
    /// range (`apply(lo) == apply(hi)`): the channel carries no
    /// information downstream.
    pub dead_channels: usize,
    /// First dead channel index, for the diagnostic message.
    pub first_dead: Option<usize>,
}

/// Result of the whole-graph interval analysis.
#[derive(Debug, Clone)]
pub struct IntervalAnalysis {
    /// Per-MVTU exact accumulator intervals, in dataflow order.
    pub mvtus: Vec<MvtuInterval>,
    /// Per-threshold-layer liveness findings, in dataflow order.
    pub thresholds: Vec<ThresholdLiveness>,
    /// Solver iteration statistics.
    pub stats: fixpoint::FixpointStats,
    /// Solved per-node *output* abstract values (one entry per layer).
    pub node_out: Vec<AbsVal>,
}

impl IntervalAnalysis {
    /// The MVTU result for a given layer index, if that layer is an MVTU.
    #[must_use]
    pub fn mvtu(&self, layer: usize) -> Option<&MvtuInterval> {
        self.mvtus.iter().find(|m| m.layer == layer)
    }
}

/// Interval of the value stream entering the network: u8 pixels.
fn input_val(channels: usize) -> AbsVal {
    AbsVal::Channels(vec![
        Interval::new(
            0,
            i128::from(crate::accumulator::INPUT_ACT_MAX)
        );
        channels
    ])
}

/// Conservative per-node output caps, used as the widening target: the
/// AF006-style domain bound for MVTUs, the structural output domain for
/// everything else. Sound for any weight assignment, so jumping to the cap
/// can never cut off a reachable value.
fn widening_caps(graph: &CnnGraph) -> Vec<Interval> {
    let mut caps = Vec::with_capacity(graph.len());
    let mut act_cap = Interval::new(0, i128::from(crate::accumulator::INPUT_ACT_MAX));
    for node in graph.iter() {
        let cap = match &node.layer {
            Layer::Conv2d(c) => {
                let fan_in = c.kernel * c.kernel * c.in_channels;
                let max_w = domain_abs_max(c.quant.weight_domain());
                let worst = fan_in as i128 * i128::from(max_w) * act_cap.abs_max();
                act_cap = Interval::new(0, i128::from(c.quant.act_domain().max));
                Interval::new(-worst, worst)
            }
            Layer::Dense(d) => {
                let max_w = domain_abs_max(d.quant.weight_domain());
                let worst = d.in_features as i128 * i128::from(max_w) * act_cap.abs_max();
                act_cap = Interval::new(0, i128::from(d.quant.act_domain().max));
                Interval::new(-worst, worst)
            }
            Layer::MultiThreshold(t) => {
                act_cap = Interval::new(0, t.table.levels() as i128);
                act_cap
            }
            Layer::MaxPool2d(_) => act_cap,
            Layer::LabelSelect(l) => Interval::new(0, l.classes.saturating_sub(1) as i128),
        };
        caps.push(cap);
    }
    caps
}

fn domain_abs_max(d: adaflow_model::QuantizedDomain) -> i64 {
    d.min.unsigned_abs().max(d.max.unsigned_abs()) as i64
}

/// Dot-product interval of one weight row against per-tap input intervals.
/// `tap_interval(t)` maps a flat tap index to the interval of the value it
/// multiplies.
fn row_interval(weights: &[i8], tap_interval: impl Fn(usize) -> Interval) -> Interval {
    let mut lo = 0i128;
    let mut hi = 0i128;
    for (t, &w) in weights.iter().enumerate() {
        if w == 0 {
            continue;
        }
        let x = tap_interval(t);
        let w = i128::from(w);
        if w >= 0 {
            lo += w * x.lo;
            hi += w * x.hi;
        } else {
            lo += w * x.hi;
            hi += w * x.lo;
        }
    }
    Interval::new(lo, hi)
}

/// Whether `node`'s declared geometry, stored weights and the incoming
/// channel count are mutually consistent. Graphs reach the verifier through
/// the serde backdoor with no constructor validation, and the *structural*
/// rules (AF001/AF002/AF007) own those defects — the precise analysis must
/// degrade to "no result" on them, never index out of bounds.
fn well_formed(node: &adaflow_model::Node, input: &[Interval]) -> bool {
    match &node.layer {
        Layer::Conv2d(c) => {
            c.weights.out_channels() == c.out_channels
                && c.weights.in_channels() == c.in_channels
                && c.weights.kernel() == c.kernel
                && input.len() == c.in_channels
        }
        Layer::Dense(d) => {
            let spatial = node.input_shape.spatial().max(1);
            d.weights.out_features() == d.out_features
                && d.weights.in_features() == d.in_features
                && d.in_features <= input.len() * spatial
        }
        Layer::MultiThreshold(t) => input.len() <= t.table.channels(),
        Layer::MaxPool2d(_) | Layer::LabelSelect(_) => true,
    }
}

/// Transfer function of one layer: input abstract value → output abstract
/// value. Returns [`AbsVal::Bottom`] while the input is unreachable (or the
/// node is structurally malformed — see [`well_formed`]).
fn transfer(node: &adaflow_model::Node, input: &AbsVal) -> AbsVal {
    let AbsVal::Channels(input) = input else {
        return AbsVal::Bottom;
    };
    if !well_formed(node, input) {
        return AbsVal::Bottom;
    }
    match &node.layer {
        Layer::Conv2d(c) => {
            let k2 = c.kernel * c.kernel;
            // With zero padding, some window taps read the constant 0
            // instead of a pixel; the per-channel interval over all output
            // positions must cover both.
            let padded: Vec<Interval> = if c.padding > 0 {
                input.iter().map(|x| x.hull(&Interval::point(0))).collect()
            } else {
                input.clone()
            };
            let out = (0..c.out_channels)
                .map(|o| row_interval(c.weights.filter(o), |t| padded[t / k2]))
                .collect();
            AbsVal::Channels(out)
        }
        Layer::Dense(d) => {
            // Channel-major flatten: feature f comes from channel
            // f / spatial of the (possibly spatial) input tensor.
            let spatial = node.input_shape.spatial().max(1);
            let out = (0..d.out_features)
                .map(|o| row_interval(d.weights.row(o), |f| input[f / spatial]))
                .collect();
            AbsVal::Channels(out)
        }
        Layer::MultiThreshold(t) => {
            let out = input
                .iter()
                .enumerate()
                .map(|(c, x)| {
                    // apply() is monotone in the accumulator, so the image
                    // of [lo, hi] is exactly [apply(lo), apply(hi)].
                    // Saturating to i32 is sound: thresholds are i32, so
                    // apply() is constant beyond the i32 range.
                    let lo = t.table.apply(c, clamp_i32(x.lo));
                    let hi = t.table.apply(c, clamp_i32(x.hi));
                    Interval::new(i128::from(lo), i128::from(hi))
                })
                .collect();
            AbsVal::Channels(out)
        }
        Layer::MaxPool2d(_) => AbsVal::Channels(input.clone()),
        Layer::LabelSelect(l) => {
            AbsVal::Channels(vec![Interval::new(0, l.classes.saturating_sub(1) as i128)])
        }
    }
}

fn clamp_i32(v: i128) -> i32 {
    v.clamp(i128::from(i32::MIN), i128::from(i32::MAX)) as i32
}

/// Runs the whole-graph interval analysis.
#[must_use]
pub fn interval_analysis(graph: &CnnGraph) -> IntervalAnalysis {
    let nodes = graph.nodes();
    let n = nodes.len();
    let edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
    // The widening target: the hull of every node's conservative domain
    // cap. The solver's widen signature is value-only (it cannot know which
    // node it runs on), so the jump target is the loosest cap in the graph
    // — still sound, and still height-one, which is all termination needs.
    // Today's feed-forward chains converge before widening ever triggers.
    let cap = widening_caps(graph)
        .into_iter()
        .reduce(|a, b| a.hull(&b))
        .unwrap_or(Interval::point(0));
    let input0 = input_val(graph.input_shape().channels);
    let solution = fixpoint::solve(
        vec![AbsVal::Bottom; n],
        &edges,
        fixpoint::Config::default(),
        |i, env| {
            let input = if i == 0 { &input0 } else { &env[i - 1] };
            transfer(&nodes[i], input)
        },
        |old, new| match (old, new) {
            (AbsVal::Channels(a), AbsVal::Channels(b)) if a.len() == b.len() => AbsVal::Channels(
                a.iter()
                    .zip(b.iter())
                    .map(|(x, y)| Interval {
                        lo: if y.lo < x.lo { x.lo.min(cap.lo) } else { x.lo },
                        hi: if y.hi > x.hi { x.hi.max(cap.hi) } else { x.hi },
                    })
                    .collect(),
            ),
            _ => old.join(new),
        },
    );
    collect(graph, solution)
}

fn collect(graph: &CnnGraph, solution: fixpoint::Solution<AbsVal>) -> IntervalAnalysis {
    let domain = crate::accumulator::accumulator_bounds(graph);
    let mut mvtus = Vec::new();
    let mut thresholds = Vec::new();
    for (i, node) in graph.iter().enumerate() {
        match &node.layer {
            Layer::Conv2d(_) | Layer::Dense(_) => {
                let AbsVal::Channels(per_channel) = &solution.values[i] else {
                    continue;
                };
                let acc = per_channel
                    .iter()
                    .copied()
                    .reduce(|a, b| a.hull(&b))
                    .unwrap_or(Interval::point(0));
                let required_bits = acc.required_bits();
                mvtus.push(MvtuInterval {
                    layer: node.id.0,
                    name: node.name.clone(),
                    per_channel: per_channel.clone(),
                    acc,
                    required_bits,
                    spare_bits: 32 - required_bits as i32,
                    domain_worst_abs: domain
                        .iter()
                        .find(|b| b.layer == node.id.0)
                        .map_or(0, |b| b.worst_abs),
                });
            }
            Layer::MultiThreshold(t) => {
                let input = if i == 0 {
                    input_val(graph.input_shape().channels)
                } else {
                    solution.values[i - 1].clone()
                };
                let AbsVal::Channels(input) = input else {
                    continue;
                };
                if input.len() > t.table.channels() {
                    continue; // malformed: AF007's finding, not ours
                }
                let mut inert = 0usize;
                let mut chans_with_inert = 0usize;
                let mut dead = 0usize;
                let mut first_dead = None;
                for (c, x) in input.iter().enumerate() {
                    let row = t.table.row(c);
                    // A threshold discriminates iff it lies in (lo, hi]:
                    // below that it is always met, above it never.
                    let live = row
                        .iter()
                        .filter(|&&th| i128::from(th) > x.lo && i128::from(th) <= x.hi)
                        .count();
                    let inert_here = row.len() - live;
                    if inert_here > 0 {
                        inert += inert_here;
                        chans_with_inert += 1;
                    }
                    if live == 0 {
                        dead += 1;
                        first_dead.get_or_insert(c);
                    }
                }
                thresholds.push(ThresholdLiveness {
                    layer: node.id.0,
                    name: node.name.clone(),
                    levels: t.table.levels(),
                    inert_thresholds: inert,
                    channels_with_inert: chans_with_inert,
                    dead_channels: dead,
                    first_dead,
                });
            }
            _ => {}
        }
    }
    IntervalAnalysis {
        mvtus,
        thresholds,
        stats: solution.stats,
        node_out: solution.values,
    }
}

/// `AF010` — exact accumulator intervals: the fixed-point interval of every
/// MVTU accumulator under the actual weights must fit `i32`; the minimal
/// accumulator width and spare-bit margin are surfaced per layer.
pub struct ExactAccumulatorIntervals;

impl crate::rules::Rule for ExactAccumulatorIntervals {
    fn code(&self) -> &'static str {
        "AF010"
    }

    fn summary(&self) -> &'static str {
        "exact fixed-point accumulator intervals fit i32 (minimal width + spare bits)"
    }

    fn check(&self, graph: &CnnGraph, diag: &mut Diagnostics) {
        let analysis = interval_analysis(graph);
        if !analysis.stats.converged {
            diag.report(
                "AF010",
                Severity::Warn,
                None,
                format!(
                    "interval fixpoint did not converge within {} iterations; \
                     falling back to the AF006 domain bound",
                    analysis.stats.iterations
                ),
                None,
            );
            return;
        }
        for m in &analysis.mvtus {
            let at = Some((m.layer, m.name.as_str()));
            if m.fits_i32() {
                diag.report(
                    "AF010",
                    Severity::Info,
                    at,
                    format!(
                        "exact accumulator interval [{}, {}] needs a {}-bit accumulator; \
                         {} spare bits in i32 (AF006 domain bound ±{})",
                        m.acc.lo, m.acc.hi, m.required_bits, m.spare_bits, m.domain_worst_abs,
                    ),
                    None,
                );
            } else {
                diag.report(
                    "AF010",
                    Severity::Error,
                    at,
                    format!(
                        "exact accumulator interval [{}, {}] needs a {}-bit accumulator \
                         and overflows i32 under the current weights",
                        m.acc.lo, m.acc.hi, m.required_bits,
                    ),
                    Some(
                        "reduce fan-in or re-quantize the weights; the overflow is reachable, \
                         not a domain-bound artifact"
                            .into(),
                    ),
                );
            }
        }
    }
}

/// `AF011` — threshold liveness: flags threshold levels the reachable
/// accumulator interval can never cross (inert levels waste comparator
/// hardware and quantization codes) and channels whose thresholded output
/// is constant (dead channels — prime pruning candidates).
pub struct ThresholdReachability;

impl crate::rules::Rule for ThresholdReachability {
    fn code(&self) -> &'static str {
        "AF011"
    }

    fn summary(&self) -> &'static str {
        "threshold levels are reachable and no channel's activation is constant"
    }

    fn check(&self, graph: &CnnGraph, diag: &mut Diagnostics) {
        let analysis = interval_analysis(graph);
        if !analysis.stats.converged {
            return; // AF010 already reports the non-convergence.
        }
        for t in &analysis.thresholds {
            let at = Some((t.layer, t.name.as_str()));
            if t.dead_channels > 0 {
                diag.report(
                    "AF011",
                    Severity::Warn,
                    at,
                    format!(
                        "{} channel(s) produce a constant activation over the whole \
                         reachable accumulator range (first: channel {}); they carry \
                         no information downstream",
                        t.dead_channels,
                        t.first_dead.unwrap_or(0),
                    ),
                    Some(
                        "prune the dead channels or re-calibrate the thresholds into the \
                         reachable range"
                            .into(),
                    ),
                );
            } else if t.inert_thresholds > 0 {
                diag.report(
                    "AF011",
                    Severity::Info,
                    at,
                    format!(
                        "{} of {} threshold level slots never discriminate \
                         ({} of {} channels affected); the implied quantization codes \
                         are unused",
                        t.inert_thresholds,
                        t.levels * graph_channels(graph, t.layer),
                        t.channels_with_inert,
                        graph_channels(graph, t.layer),
                    ),
                    None,
                );
            }
        }
    }
}

fn graph_channels(graph: &CnnGraph, layer: usize) -> usize {
    graph.nodes().get(layer).map_or(0, |n| match &n.layer {
        Layer::MultiThreshold(t) => t.channels,
        _ => 0,
    })
}

/// Post-pass over a finished report: AF006 judges the retraining-proof
/// domain bound, so it errors on graphs whose *actual* weights are
/// perfectly safe. When the exact interval analysis proves every reachable
/// accumulator value fits `i32`, the AF006 error is a false positive for
/// the deployed weights and is demoted to Warn (the domain-level concern —
/// retraining could still overflow — stays on record).
pub fn demote_af006_false_positives(graph: &CnnGraph, report: &mut crate::Report) {
    if !report
        .diagnostics
        .iter()
        .any(|d| d.code == "AF006" && d.severity == Severity::Error)
    {
        return;
    }
    let analysis = interval_analysis(graph);
    if !analysis.stats.converged {
        return;
    }
    for d in &mut report.diagnostics {
        if d.code != "AF006" || d.severity != Severity::Error {
            continue;
        }
        let proven = d
            .layer
            .and_then(|l| analysis.mvtu(l))
            .is_some_and(MvtuInterval::fits_i32);
        if proven {
            d.severity = Severity::Warn;
            d.message.push_str(
                " — demoted: AF010 interval analysis proves the current weights cannot \
                 overflow i32 (retraining under this spec may still overflow)",
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaflow_model::prelude::*;

    fn small() -> CnnGraph {
        GraphBuilder::new("small", TensorShape::new(1, 6, 6))
            .conv2d(Conv2d::new(1, 2, 3, 1, 0, QuantSpec::w2a2()))
            .threshold(MultiThreshold::uniform(2, 3, -200, 200))
            .dense(Dense::new(2 * 4 * 4, 3, QuantSpec::w2a2()))
            .label_select(3)
            .build()
            .expect("builds")
    }

    #[test]
    fn zero_weights_give_point_intervals() {
        let analysis = interval_analysis(&small());
        assert!(analysis.stats.converged);
        assert_eq!(analysis.mvtus.len(), 2);
        for m in &analysis.mvtus {
            assert_eq!(m.acc, Interval::point(0), "{}", m.name);
            assert_eq!(m.required_bits, 1);
        }
    }

    #[test]
    fn conv_interval_matches_hand_computation() {
        // One filter: [+1, -1, +1, 0, ...] against pixels in [0, 255]:
        // lo = -255 (negative tap at max), hi = 2·255 (positive taps at max).
        let mut conv = Conv2d::new(1, 1, 3, 1, 0, QuantSpec::w2a2());
        conv.weights.set(0, 0, 0, 0, 1);
        conv.weights.set(0, 0, 0, 1, -1);
        conv.weights.set(0, 0, 0, 2, 1);
        let g = GraphBuilder::new("hand", TensorShape::new(1, 5, 5))
            .conv2d(conv)
            .threshold(MultiThreshold::uniform(1, 3, -100, 100))
            .dense(Dense::new(9, 2, QuantSpec::w2a2()))
            .label_select(2)
            .build()
            .expect("builds");
        let analysis = interval_analysis(&g);
        assert_eq!(analysis.mvtus[0].acc, Interval::new(-255, 510));
        // Signed 10-bit covers [-512, 511] ⊇ [-255, 510].
        assert_eq!(analysis.mvtus[0].required_bits, 10);
    }

    #[test]
    fn padding_extends_taps_to_zero() {
        // All-positive filter with padding: lo must stay 0-reachable but,
        // more to the point, an all-negative filter's hi must include 0.
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, QuantSpec::w2a2());
        for kh in 0..3 {
            for kw in 0..3 {
                conv.weights.set(0, 0, kh, kw, -1);
            }
        }
        let g = GraphBuilder::new("pad", TensorShape::new(1, 5, 5))
            .conv2d(conv)
            .threshold(MultiThreshold::uniform(1, 3, -100, 100))
            .dense(Dense::new(25, 2, QuantSpec::w2a2()))
            .label_select(2)
            .build()
            .expect("builds");
        let analysis = interval_analysis(&g);
        // Padding taps contribute 0, so hi = 0 stays; without padding the
        // same bound holds here (pixels can be 0) — the load-bearing check
        // is lo: nine taps at -255.
        assert_eq!(analysis.mvtus[0].acc, Interval::new(-9 * 255, 0));
    }

    #[test]
    fn threshold_transfer_uses_monotone_apply() {
        // Accumulator range [-255, 510] against thresholds {-50, 0, 50}:
        // apply(-255) = 0, apply(510) = 3 → full 2-bit range.
        let mut conv = Conv2d::new(1, 1, 3, 1, 0, QuantSpec::w2a2());
        conv.weights.set(0, 0, 0, 0, 1);
        conv.weights.set(0, 0, 0, 1, -1);
        conv.weights.set(0, 0, 0, 2, 1);
        let g = GraphBuilder::new("thresh", TensorShape::new(1, 5, 5))
            .conv2d(conv)
            .threshold(MultiThreshold::uniform(1, 3, -100, 100))
            .dense(Dense::new(9, 2, QuantSpec::w2a2()))
            .label_select(2)
            .build()
            .expect("builds");
        let analysis = interval_analysis(&g);
        match &analysis.node_out[1] {
            AbsVal::Channels(ch) => assert_eq!(ch[0], Interval::new(0, 3)),
            AbsVal::Bottom => panic!("threshold output unreachable"),
        }
    }

    #[test]
    fn builtin_intervals_never_looser_than_domain_bound() {
        for g in [
            topology::cnv_w2a2_cifar10().expect("builds"),
            topology::cnv_w1a2_cifar10().expect("builds"),
            topology::lenet(QuantSpec::w2a2(), 10).expect("builds"),
            topology::lenet(QuantSpec::w1a2(), 10).expect("builds"),
            topology::tiny(QuantSpec::w2a2(), 4).expect("builds"),
        ] {
            let analysis = interval_analysis(&g);
            assert!(analysis.stats.converged);
            for m in &analysis.mvtus {
                assert!(
                    m.acc.abs_max() <= m.domain_worst_abs,
                    "{}/{}: exact interval [{}, {}] looser than domain bound ±{}",
                    g.name(),
                    m.name,
                    m.acc.lo,
                    m.acc.hi,
                    m.domain_worst_abs,
                );
                assert!(m.fits_i32(), "{}/{}", g.name(), m.name);
            }
        }
    }

    #[test]
    fn interval_act_bounds_agree_with_domain_walk() {
        // The per-MVTU incoming activation maxima derived by
        // adaflow_model::mvtu_domains must dominate the exact intervals.
        let g = topology::cnv_w2a2_cifar10().expect("builds");
        let analysis = interval_analysis(&g);
        let domains = adaflow_model::mvtu_domains(&g);
        for d in &domains {
            let input = if d.layer == 0 {
                input_val(g.input_shape().channels)
            } else {
                analysis.node_out[d.layer - 1].clone()
            };
            let AbsVal::Channels(ch) = input else {
                panic!("unreachable MVTU input");
            };
            for x in &ch {
                assert!(x.hi <= i128::from(d.act_in_max), "{}", d.name);
                assert!(x.lo >= 0, "{}: activations are unsigned", d.name);
            }
        }
    }

    #[test]
    fn dead_channels_detected_when_thresholds_unreachable() {
        // Thresholds far above anything the conv can produce: every
        // channel's activation is constantly 0.
        let mut conv = Conv2d::new(1, 2, 3, 1, 0, QuantSpec::w2a2());
        for o in 0..2 {
            conv.weights.set(o, 0, 0, 0, 1);
        }
        let g = GraphBuilder::new("dead", TensorShape::new(1, 6, 6))
            .conv2d(conv)
            .threshold(MultiThreshold::uniform(2, 3, 100_000, 100_300))
            .dense(Dense::new(2 * 4 * 4, 2, QuantSpec::w2a2()))
            .label_select(2)
            .build()
            .expect("builds");
        let analysis = interval_analysis(&g);
        assert_eq!(analysis.thresholds[0].dead_channels, 2);
        assert_eq!(analysis.thresholds[0].first_dead, Some(0));
    }

    #[test]
    fn required_bits_edge_cases() {
        assert_eq!(Interval::point(0).required_bits(), 1);
        assert_eq!(Interval::new(-1, 0).required_bits(), 1);
        assert_eq!(Interval::new(0, 1).required_bits(), 2);
        assert_eq!(Interval::new(-128, 127).required_bits(), 8);
        assert_eq!(Interval::new(-129, 127).required_bits(), 9);
        assert_eq!(
            Interval::new(i128::from(i32::MIN), i128::from(i32::MAX)).required_bits(),
            32
        );
    }
}
