//! The rule-documentation registry behind `lint --explain <CODE>`.
//!
//! Every diagnostic code any validator in the workspace can emit — the
//! graph rules (`AF…`) in this crate, the dataflow rules (`DF…`) in
//! `adaflow-dataflow`, the serving rules (`SV…`) in `adaflow-serve` and the
//! fleet rules (`FL…`) in `adaflow-fleet` — has one [`RuleDoc`] entry here:
//! a summary, the severity range it emits, the paper provenance that
//! motivates it, and a worked example fix. The registry lives in this crate
//! (the bottom of the verification dependency order) so the CLI can resolve
//! any code without linking rule implementations; the higher crates' rules
//! are registered by code string, and each owning crate carries a test that
//! its emitted codes resolve here.

/// Catalog entry of one diagnostic code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleDoc {
    /// Stable code (`"AF006"`).
    pub code: &'static str,
    /// One-line invariant statement.
    pub summary: &'static str,
    /// The severities the rule emits, worst first (`"Error | Info"`).
    pub severities: &'static str,
    /// Where the invariant comes from in the literature.
    pub provenance: &'static str,
    /// A concrete example of fixing a violation.
    pub example_fix: &'static str,
}

/// All registered rule docs, in code order.
#[must_use]
pub fn rule_docs() -> &'static [RuleDoc] {
    DOCS
}

/// Looks up one code (case-insensitive).
#[must_use]
pub fn explain(code: &str) -> Option<&'static RuleDoc> {
    DOCS.iter().find(|d| d.code.eq_ignore_ascii_case(code))
}

static DOCS: &[RuleDoc] = &[
    RuleDoc {
        code: "AF001",
        summary: "declared layer shapes match whole-graph shape re-inference",
        severities: "Error",
        provenance: "FINN's compiler re-derives every inter-layer tensor shape before HLS \
                     generation (Umuroglu et al., FPGA'17); a stale declared shape desyncs \
                     folding and stream widths downstream",
        example_fix: "rebuild the graph through GraphBuilder (CnnGraph::from_layers) instead \
                      of editing node shapes in place",
    },
    RuleDoc {
        code: "AF002",
        summary: "weight tensor geometry matches declared layer parameters",
        severities: "Error",
        provenance: "pruning transforms must shrink weights and declared dims together \
                     (Li et al., ICLR'17); a mismatch silently mis-indexes the MVTU weight \
                     memory",
        example_fix: "after ConvWeights::without_filters, update Conv2d::out_channels to the \
                      surviving filter count",
    },
    RuleDoc {
        code: "AF003",
        summary: "all weights lie in the layer's quantized weight domain",
        severities: "Error | Warn",
        provenance: "Brevitas narrow-range signed quantizers (W1 = {-1,+1} excluding zero); \
                     out-of-domain magnitudes break the bitplane decomposition the packed \
                     MVTU kernels rely on",
        example_fix: "re-quantize with QuantizedDomain::clamp, or widen the declared \
                      weight_bits to cover the stored values",
    },
    RuleDoc {
        code: "AF004",
        summary: "per-channel threshold rows are monotonically ascending",
        severities: "Error",
        provenance: "FINN folds batch-norm + activation into a monotone threshold list; the \
                     MVTU counts a met-threshold prefix, so an unsorted row mis-activates \
                     silently",
        example_fix: "construct tables via ThresholdTable::from_rows, which rejects unsorted \
                      rows; sort each channel's thresholds ascending",
    },
    RuleDoc {
        code: "AF005",
        summary: "threshold tables cover the producer MVTU's activation domain",
        severities: "Error | Warn",
        provenance: "a 2-bit activation needs exactly 2^bits - 1 = 3 levels (FINN \
                     MultiThreshold semantics); missing levels truncate the activation \
                     domain, dead levels waste comparators",
        example_fix: "rebuild the table with quant.threshold_levels() levels per channel, \
                      calibrated inside the producer's accumulator range",
    },
    RuleDoc {
        code: "AF006",
        summary: "i32 accumulators provably cannot overflow (fan-in × max|w| × max|a|)",
        severities: "Error | Warn | Info",
        provenance: "FINN sizes MVTU accumulators from fan-in and quantized domains before \
                     synthesis ('On the RTL Implementation of FINN Matrix Vector Compute \
                     Unit'); the bound holds for any retraining under the spec",
        example_fix: "reduce fan-in (prune input channels) or narrow weight/activation bit \
                      widths; an Error demoted to Warn means AF010 proved the current \
                      weights safe",
    },
    RuleDoc {
        code: "AF007",
        summary: "pruned channel counts propagate to thresholds and downstream layers",
        severities: "Error",
        provenance: "AdaFlow attaches per-layer channel counts to the model description at \
                     prune time (paper §IV-A2); a missed consumer update corrupts every \
                     downstream activation",
        example_fix: "propagate filter removal with ConvWeights::without_input_channels, \
                      ThresholdTable::without_channels and \
                      DenseWeights::without_input_features",
    },
    RuleDoc {
        code: "AF008",
        summary: "accumulator/activation alternation is executable by the MVTU dataflow",
        severities: "Error | Warn",
        provenance: "the FINN dataflow streams quantized activations between MVTUs; raw \
                     accumulators must be re-quantized by a MultiThreshold before pooling \
                     or the next MVTU",
        example_fix: "insert a MultiThreshold after each non-classifier MVTU; end the graph \
                      in a LabelSelect over classifier accumulators",
    },
    RuleDoc {
        code: "AF009",
        summary: "MVTU domains fit the packed popcount-kernel contract (≤2-bit weights and \
                  activations)",
        severities: "Warn | Info",
        provenance: "XNOR/AND-popcount MVTU datapaths (FINN, Umuroglu et al., FPGA'17) only \
                     represent {-1,0,+1} weights and ≤2 activation bitplanes; ineligible \
                     layers silently fall back to GEMM",
        example_fix: "recalibrate the upstream threshold table to ≤3 levels (or fix stored \
                      weights to ±1) so the packed kernels engage",
    },
    RuleDoc {
        code: "AF010",
        summary: "exact fixed-point accumulator intervals fit i32 (minimal width + spare \
                  bits)",
        severities: "Error | Warn | Info",
        provenance: "abstract interpretation over per-channel value intervals — the precise \
                     counterpart of AF006's domain bound, mirroring the accumulator-width \
                     minimization hardware toolflows run before synthesis (Venieris et al., \
                     'Toolflows for Mapping CNNs on FPGAs')",
        example_fix: "an Error here is a reachable overflow: re-quantize or prune the \
                      offending layer's fan-in; Info findings report spare bits available \
                      for narrower accumulators",
    },
    RuleDoc {
        code: "AF011",
        summary: "threshold levels are reachable and no channel's activation is constant",
        severities: "Warn | Info",
        provenance: "interval analysis of the incoming accumulator range: levels outside it \
                     never discriminate (wasted comparators/codes), and a channel whose \
                     whole range sits between two levels emits a constant — dead hardware \
                     (cf. dead-code elimination via abstract interpretation)",
        example_fix: "re-calibrate thresholds into the reachable accumulator range, or prune \
                      dead channels before synthesis",
    },
    RuleDoc {
        code: "DF001",
        summary: "folding PE/SIMD divide each MVTU's neuron/channel counts",
        severities: "Error",
        provenance: "FINN's no-idle-lanes folding constraint: PE must divide rows, SIMD must \
                     divide columns, or lanes idle every cycle (FINN §IV)",
        example_fix: "pick PE from the divisors of the filter count and SIMD from the \
                      divisors of k²·ch_in (FinnConfig::auto does this)",
    },
    RuleDoc {
        code: "DF002",
        summary: "SWU stream widths match their consumer MVTU's SIMD and column geometry",
        severities: "Error | Warn",
        provenance: "the sliding-window unit feeds the MVTU a k²·ch_in-column window at SIMD \
                     lanes per cycle; any width mismatch stalls or corrupts the stream \
                     (FINN dataflow architecture)",
        example_fix: "compile SWUs from the consumer MVTU's folding (SWU simd = MVTU simd) \
                      rather than configuring them independently",
    },
    RuleDoc {
        code: "DF003",
        summary: "FIFO capacities sustain the bottleneck initiation interval",
        severities: "Error | Warn | Info",
        provenance: "inter-module FIFOs absorb rate mismatch; the required capacity per edge \
                     is the pair-cycle bound ⌈(c_up + c_down)/II⌉ from max-plus analysis of \
                     the stream graph (cf. FINN's FIFO sizing pass)",
        example_fix: "use the DF005-proven per-edge capacities; a Warn means the uniform \
                      heuristic over-allocates >2× the proven-safe total",
    },
    RuleDoc {
        code: "DF004",
        summary: "steady-state stage rates balance; the bottleneck and mismatch severity \
                  are reported",
        severities: "Info",
        provenance: "dataflow pipelines run at the maximum cycle mean of their event graph \
                     (max-plus spectral theory); AdaFlow's folding search targets balanced \
                     stage IIs (paper §IV-B)",
        example_fix: "re-fold toward the bottleneck: raise its PE·SIMD product (or lower \
                      everyone else's) until utilizations converge",
    },
    RuleDoc {
        code: "DF005",
        summary: "FIFO capacities admit a deadlock-free schedule (no zero-token cycle)",
        severities: "Error | Info",
        provenance: "marked-graph liveness (Commoner/Murata): a streaming pipeline \
                     deadlocks iff some directed cycle of its data/space edges carries no \
                     initial token; the counterexample is the blocked cycle's token trace",
        example_fix: "give every FIFO capacity ≥ 1; for throughput, use the pair-cycle \
                      bound ⌈(c_up + c_down)/II⌉ per edge",
    },
    RuleDoc {
        code: "FL001",
        summary: "the fleet has at least one device and a usable drain budget",
        severities: "Error",
        provenance: "staggered fleet reconfiguration (AdaFlow multi-device serving) drains \
                     one device at a time; zero devices or a zero drain budget makes the \
                     rollout vacuous or unbounded",
        example_fix: "register at least one device and set a positive drain budget before \
                      starting a rollout",
    },
    RuleDoc {
        code: "FL002",
        summary: "the router matches the deadline discipline it is asked to serve",
        severities: "Error | Warn",
        provenance: "deadline-aware routing needs a deadline budget to rank by; conversely \
                     round-robin under deadlines ignores slack and misses SLOs under skew",
        example_fix: "pair the deadline-aware router with a deadline budget, or switch to \
                      round-robin when no deadline is configured",
    },
    RuleDoc {
        code: "SV001",
        summary: "the batcher's max-wait fits inside the deadline budget",
        severities: "Error | Warn",
        provenance: "a request queued for up to max-wait still needs service time before \
                     its deadline; SLO-aware serving requires wait + service ≤ deadline \
                     (cf. clockwork-style serving budgets)",
        example_fix: "lower batch max-wait below deadline − p99 service time, or relax the \
                      deadline",
    },
    RuleDoc {
        code: "SV002",
        summary: "queue capacity covers the worst-case reconfiguration backlog",
        severities: "Error | Warn",
        provenance: "during an FPGA reconfiguration stall (AdaFlow model switch, paper \
                     §IV-C) arrivals keep queuing; the queue must absorb \
                     arrival_rate × stall without dropping",
        example_fix: "raise queue capacity above arrival_rate × worst reconfiguration time, \
                      or shorten reconfigurations (partial bitstreams)",
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_graph_rule_code_has_a_doc() {
        for (code, summary) in crate::Verifier::new().catalog() {
            let doc = explain(code).unwrap_or_else(|| panic!("no doc for {code}"));
            assert_eq!(doc.summary, summary, "{code}: catalog/doc summary drift");
        }
    }

    #[test]
    fn docs_are_sorted_and_unique() {
        let codes: Vec<&str> = rule_docs().iter().map(|d| d.code).collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(codes, sorted, "docs must be unique and in code order");
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(explain("af006").is_some());
        assert!(explain("Df005").is_some());
        assert!(explain("ZZ999").is_none());
    }

    #[test]
    fn all_doc_fields_are_filled() {
        for d in rule_docs() {
            assert!(!d.summary.is_empty(), "{}", d.code);
            assert!(!d.severities.is_empty(), "{}", d.code);
            assert!(!d.provenance.is_empty(), "{}", d.code);
            assert!(!d.example_fix.is_empty(), "{}", d.code);
        }
    }
}
