//! Steady-state rate-balance analysis (`DF004`).
//!
//! A dataflow accelerator is a chain of stages (SWU, MVTU, pool, ...) that
//! each need `c_i` cycles per frame, coupled by FIFOs of finite capacity.
//! The pipeline's steady-state initiation interval is governed by the
//! max-plus recurrence the cycle-accurate stream simulator executes:
//!
//! ```text
//! t[i][f] = max(t[i-1][f],          // previous frame through this stage
//!               t[i][f-1]  + ...,   // data from upstream   (0 tokens)
//!               t[i+1][f-d]) + c_i  // space from downstream (d tokens)
//! ```
//!
//! Such a system's asymptotic growth rate is its **maximum cycle mean**:
//! self-loops contribute `c_i`, and each FIFO edge of capacity `d` closes a
//! producer/consumer cycle of weight `c_i + c_{i+1}` over `d` tokens. Any
//! longer cycle through `k` consecutive stages carries `Σc` weight over
//! `Σd` tokens, a mean dominated by its worst adjacent pair — so the exact
//! steady-state II of a chain is
//!
//! ```text
//! II = max( max_i c_i,  max_i ⌈(c_i + c_{i+1}) / d_i⌉ )
//! ```
//!
//! This module computes that II as a fixed point on the shared worklist
//! solver ([`crate::fixpoint`]): the abstract value per stage is its
//! locally-required II (a `u64` max-lattice), the transfer takes the max of
//! the stage's own cost, its pair-cycle bounds, and its neighbors' values
//! (stages in a chain sustain one common rate), and iteration spreads the
//! global maximum to every stage. The lattice is finite (bounded by the
//! largest pair sum), so the solver terminates without ever widening.
//!
//! The dataflow crate builds [`Stage`] lists from compiled module specs
//! and feeds the verdict to rule `DF004`; `fifo.rs` inverts the pair-cycle
//! bound to size each FIFO (`required_edge_capacity` in
//! [`crate::liveness`]).

use crate::fixpoint::{self, Lattice};

/// One pipeline stage, abstractly: a name and its cycles-per-frame cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stage {
    /// Stage name (module name in the accelerator).
    pub name: String,
    /// Cycles this stage needs per frame.
    pub cycles: u64,
}

impl Stage {
    /// Convenience constructor.
    #[must_use]
    pub fn new(name: impl Into<String>, cycles: u64) -> Self {
        Self {
            name: name.into(),
            cycles,
        }
    }
}

/// Per-stage verdict of the rate analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct StageRate {
    /// Stage name.
    pub name: String,
    /// Cycles per frame.
    pub cycles: u64,
    /// Fraction of the steady-state interval this stage is busy
    /// (`cycles / steady_ii`).
    pub utilization: f64,
    /// Idle cycles per frame at steady state (`steady_ii - cycles`).
    pub slack_cycles: u64,
}

/// How unbalanced the pipeline is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MismatchSeverity {
    /// The runner-up stage is within 2× of the bottleneck.
    Balanced,
    /// The bottleneck dominates the runner-up by 2–10×.
    Moderate,
    /// The bottleneck dominates by more than 10×: most of the pipeline
    /// idles, and re-folding should shift resources toward it.
    Severe,
}

impl std::fmt::Display for MismatchSeverity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Balanced => "balanced",
            Self::Moderate => "moderate",
            Self::Severe => "severe",
        })
    }
}

/// Result of the steady-state rate-balance fixpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct RateReport {
    /// Steady-state initiation interval (cycles per frame) of the chain.
    pub steady_ii: u64,
    /// Index of the bottleneck stage.
    pub bottleneck: usize,
    /// Name of the bottleneck stage.
    pub bottleneck_name: String,
    /// Whether the II is set by a FIFO pair-cycle (back-pressure) rather
    /// than a single stage's compute cost — deeper FIFOs would help.
    pub fifo_bound: bool,
    /// Per-stage utilization/slack, in pipeline order.
    pub stages: Vec<StageRate>,
    /// Bottleneck cycles over runner-up cycles (1.0 for a perfectly
    /// balanced pipeline; ∞ degenerates to the bottleneck cycles when
    /// there is a single stage).
    pub mismatch_ratio: f64,
    /// Solver iteration statistics.
    pub stats: fixpoint::FixpointStats,
}

impl RateReport {
    /// Classifies the mismatch ratio.
    #[must_use]
    pub fn severity(&self) -> MismatchSeverity {
        if self.mismatch_ratio < 2.0 {
            MismatchSeverity::Balanced
        } else if self.mismatch_ratio <= 10.0 {
            MismatchSeverity::Moderate
        } else {
            MismatchSeverity::Severe
        }
    }

    /// Frames per second at `clock_hz` under the steady-state II.
    #[must_use]
    pub fn throughput_fps(&self, clock_hz: f64) -> f64 {
        if self.steady_ii == 0 {
            0.0
        } else {
            clock_hz / self.steady_ii as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct MaxU64(u64);

impl Lattice for MaxU64 {
    fn join(&self, other: &Self) -> Self {
        MaxU64(self.0.max(other.0))
    }
}

fn pair_bound(a: u64, b: u64, depth: usize) -> u64 {
    let d = depth.max(1) as u64;
    (a + b).div_ceil(d)
}

/// Solves the steady-state rate equations for a chain of `stages` coupled
/// by FIFOs of per-edge capacity `depths` (`depths.len() == stages.len() -
/// 1`; an empty chain or single stage needs no FIFOs).
///
/// # Panics
///
/// Panics if `depths.len() + 1 != stages.len()` for a non-empty chain.
#[must_use]
pub fn rate_balance(stages: &[Stage], depths: &[usize]) -> RateReport {
    assert!(
        stages.is_empty() || depths.len() + 1 == stages.len(),
        "need exactly one FIFO depth per adjacent stage pair ({} stages, {} depths)",
        stages.len(),
        depths.len(),
    );
    let n = stages.len();
    // Producer/consumer coupling runs both ways: upstream back-pressure and
    // downstream starvation.
    let mut edges = Vec::with_capacity(2 * n.saturating_sub(1));
    for i in 1..n {
        edges.push((i - 1, i));
        edges.push((i, i - 1));
    }
    let solution = fixpoint::solve(
        stages.iter().map(|s| MaxU64(s.cycles)).collect(),
        &edges,
        fixpoint::Config::default(),
        |i, env| {
            let mut ii = stages[i].cycles;
            if i > 0 {
                ii = ii.max(env[i - 1].0).max(pair_bound(
                    stages[i - 1].cycles,
                    stages[i].cycles,
                    depths[i - 1],
                ));
            }
            if i + 1 < n {
                ii = ii.max(env[i + 1].0).max(pair_bound(
                    stages[i].cycles,
                    stages[i + 1].cycles,
                    depths[i],
                ));
            }
            MaxU64(ii)
        },
        // The lattice is finite (bounded by the largest pair sum), so
        // widening is plain replacement; it never actually runs.
        |_, new| *new,
    );
    let steady_ii = solution.values.first().map_or(0, |v| v.0);
    let bottleneck = stages
        .iter()
        .enumerate()
        .max_by_key(|(_, s)| s.cycles)
        .map_or(0, |(i, _)| i);
    let runner_up = stages
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != bottleneck)
        .map(|(_, s)| s.cycles)
        .max();
    let bottleneck_cycles = stages.get(bottleneck).map_or(0, |s| s.cycles);
    let mismatch_ratio = match runner_up {
        Some(r) if r > 0 => bottleneck_cycles as f64 / r as f64,
        _ => bottleneck_cycles as f64,
    };
    RateReport {
        steady_ii,
        bottleneck,
        bottleneck_name: stages
            .get(bottleneck)
            .map_or_else(String::new, |s| s.name.clone()),
        fifo_bound: steady_ii > bottleneck_cycles,
        stages: stages
            .iter()
            .map(|s| StageRate {
                name: s.name.clone(),
                cycles: s.cycles,
                utilization: if steady_ii == 0 {
                    0.0
                } else {
                    s.cycles as f64 / steady_ii as f64
                },
                slack_cycles: steady_ii.saturating_sub(s.cycles),
            })
            .collect(),
        mismatch_ratio,
        stats: solution.stats,
    }
}

/// [`rate_balance`] with one uniform FIFO depth on every edge.
#[must_use]
pub fn rate_balance_uniform(stages: &[Stage], depth: usize) -> RateReport {
    let edges = stages.len().saturating_sub(1);
    rate_balance(stages, &vec![depth; edges])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stages(cycles: &[u64]) -> Vec<Stage> {
        cycles
            .iter()
            .enumerate()
            .map(|(i, &c)| Stage::new(format!("s{i}"), c))
            .collect()
    }

    // The analytic fixpoint must reproduce the stream simulator's measured
    // steady-state IIs (see adaflow-dataflow stream.rs tests): [5,40,5] at
    // depth 1 → 45, at depth 2 → 40; [1,1,100] at depth 1 → 101;
    // [10,10,10] at depth 1 → 20.
    #[test]
    fn matches_simulator_reference_points() {
        assert_eq!(rate_balance_uniform(&stages(&[5, 40, 5]), 1).steady_ii, 45);
        assert_eq!(rate_balance_uniform(&stages(&[5, 40, 5]), 2).steady_ii, 40);
        assert_eq!(
            rate_balance_uniform(&stages(&[1, 1, 100]), 1).steady_ii,
            101
        );
        assert_eq!(
            rate_balance_uniform(&stages(&[10, 10, 10]), 1).steady_ii,
            20
        );
    }

    #[test]
    fn deep_fifos_recover_the_compute_bound() {
        let s = stages(&[10, 10, 10]);
        let r = rate_balance_uniform(&s, 4);
        assert_eq!(r.steady_ii, 10, "depth 4 kills every pair cycle");
        assert!(!r.fifo_bound);
        assert!(r.stats.converged);
        assert_eq!(r.stats.widenings, 0);
    }

    #[test]
    fn fifo_bound_flag_set_when_backpressure_dominates() {
        let r = rate_balance_uniform(&stages(&[10, 10, 10]), 1);
        assert_eq!(r.steady_ii, 20);
        assert!(r.fifo_bound);
    }

    #[test]
    fn bottleneck_and_utilization() {
        let r = rate_balance_uniform(&stages(&[5, 40, 5]), 2);
        assert_eq!(r.bottleneck, 1);
        assert_eq!(r.bottleneck_name, "s1");
        assert!((r.stages[1].utilization - 1.0).abs() < 1e-12);
        assert!((r.stages[0].utilization - 0.125).abs() < 1e-12);
        assert_eq!(r.stages[0].slack_cycles, 35);
        assert!((r.mismatch_ratio - 8.0).abs() < 1e-12);
        assert_eq!(r.severity(), MismatchSeverity::Moderate);
    }

    #[test]
    fn severity_classification_boundaries() {
        let balanced = rate_balance_uniform(&stages(&[10, 11, 10]), 4);
        assert_eq!(balanced.severity(), MismatchSeverity::Balanced);
        let severe = rate_balance_uniform(&stages(&[1, 100]), 4);
        assert_eq!(severe.severity(), MismatchSeverity::Severe);
    }

    #[test]
    fn per_edge_depths_bind_individually() {
        // Edge 0 deep, edge 1 shallow: only the second pair cycle binds.
        let r = rate_balance(&stages(&[10, 10, 10]), &[4, 1]);
        assert_eq!(r.steady_ii, 20);
        let r = rate_balance(&stages(&[10, 10, 10]), &[1, 4]);
        assert_eq!(r.steady_ii, 20);
        let r = rate_balance(&stages(&[10, 10, 10]), &[2, 2]);
        assert_eq!(r.steady_ii, 10);
    }

    #[test]
    fn single_stage_and_empty_chains() {
        let r = rate_balance(&stages(&[7]), &[]);
        assert_eq!(r.steady_ii, 7);
        assert_eq!(r.mismatch_ratio, 7.0);
        let r = rate_balance(&[], &[]);
        assert_eq!(r.steady_ii, 0);
        assert!(r.stages.is_empty());
    }

    #[test]
    fn throughput_follows_ii() {
        let r = rate_balance_uniform(&stages(&[100]), 1);
        assert!((r.throughput_fps(1.0e8) - 1.0e6).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "one FIFO depth per adjacent stage pair")]
    fn mismatched_depths_rejected() {
        let _ = rate_balance(&stages(&[1, 2, 3]), &[1]);
    }
}
