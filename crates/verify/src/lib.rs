//! # adaflow-verify
//!
//! Whole-graph static verifier for AdaFlow CNN graphs: a rule-based
//! analyzer that re-derives and cross-checks the structural invariants the
//! rest of the stack depends on — shape inference, quantization
//! consistency, worst-case accumulator bounds, pruning propagation and
//! dataflow executability — and reports findings through a structured
//! diagnostics engine.
//!
//! FINN performs exactly this kind of analysis before HLS generation
//! (accumulator sizing from fan-in and quantized domains, threshold-domain
//! coverage); here it is packaged as a lint pass so that every pruning or
//! performance transform in the workspace can be checked, and so the CLI
//! can lint any topology:
//!
//! ```text
//! adaflow_cli lint --model cnv-w2a2 --rates 0,0.25,0.5
//! ```
//!
//! The graph rule catalog is `AF001`–`AF011` (see [`rules`]); the
//! dataflow-level rules `DF001`–`DF005` live in `adaflow-dataflow::verify`
//! because they need the folding configuration and compiled accelerator,
//! which sit above this crate in the dependency order. Both share the
//! [`Diagnostics`] engine defined here.
//!
//! Beyond the structural rules, the crate carries an abstract-
//! interpretation layer (DESIGN.md §13): a generic worklist fixed-point
//! solver ([`fixpoint`]) with three analyses on top — exact per-channel
//! value intervals and minimal accumulator widths ([`interval`], rules
//! `AF010`/`AF011`), steady-state rate balance over pipeline stages
//! ([`rate`], consumed by `DF004`), and FIFO deadlock-freedom proofs over
//! timed marked graphs ([`liveness`], consumed by `DF005`). The
//! [`explain`] module documents every code any workspace validator emits,
//! backing the CLI's `lint --explain`.
//!
//! ```
//! use adaflow_model::prelude::*;
//! use adaflow_verify::verify_graph;
//!
//! let graph = topology::tiny(QuantSpec::w2a2(), 4).expect("builds");
//! let report = verify_graph(&graph);
//! assert!(!report.has_errors());
//! // AF006 reports the accumulator margin of every MVTU layer.
//! assert!(report.fired("AF006"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accumulator;
pub mod diag;
pub mod explain;
pub mod fixpoint;
pub mod interval;
pub mod liveness;
pub mod rate;
pub mod rules;

pub use accumulator::{accumulator_bounds, AccumulatorBound, INPUT_ACT_MAX};
pub use diag::{Diagnostic, Diagnostics, LintConfig, Report, Severity};
pub use explain::{explain, rule_docs, RuleDoc};
pub use fixpoint::{FixpointStats, Lattice};
pub use interval::{interval_analysis, Interval, IntervalAnalysis, MvtuInterval};
pub use liveness::{required_edge_capacity, Liveness, TimedMarkedGraph};
pub use rate::{rate_balance, rate_balance_uniform, MismatchSeverity, RateReport, Stage};
pub use rules::Rule;

use adaflow_model::CnnGraph;

/// A configured verification pass: a rule catalog plus a lint policy.
pub struct Verifier {
    rules: Vec<Box<dyn Rule>>,
    config: LintConfig,
}

impl Default for Verifier {
    fn default() -> Self {
        Self::new()
    }
}

impl Verifier {
    /// A verifier with the full default rule catalog and a neutral policy.
    #[must_use]
    pub fn new() -> Self {
        Self {
            rules: rules::catalog(),
            config: LintConfig::default(),
        }
    }

    /// Sets the allow/deny policy applied while collecting diagnostics.
    #[must_use]
    pub fn with_config(mut self, config: LintConfig) -> Self {
        self.config = config;
        self
    }

    /// `(code, invariant)` pairs of the loaded catalog, for `--explain`
    /// output and documentation.
    #[must_use]
    pub fn catalog(&self) -> Vec<(&'static str, &'static str)> {
        self.rules.iter().map(|r| (r.code(), r.summary())).collect()
    }

    /// Runs every rule over `graph` and returns the combined report.
    ///
    /// After the rule sweep, AF006 errors whose layer the exact interval
    /// analysis (AF010) proves safe for the *current* weights are demoted
    /// to warnings — unless the policy explicitly denies AF006, in which
    /// case the conservative verdict stands.
    #[must_use]
    pub fn verify(&self, graph: &CnnGraph) -> Report {
        let mut diag = Diagnostics::with_config(self.config.clone());
        for rule in &self.rules {
            rule.check(graph, &mut diag);
        }
        let mut report = diag.into_report(graph.name());
        if !self.config.deny.contains("AF006") {
            interval::demote_af006_false_positives(graph, &mut report);
        }
        report
    }
}

/// Verifies `graph` with the default catalog and neutral policy.
#[must_use]
pub fn verify_graph(graph: &CnnGraph) -> Report {
    Verifier::new().verify(graph)
}

/// Debug-build guard: panics if `graph` fails verification. Call sites in
/// `adaflow-nn` and `adaflow-pruning` invoke this behind
/// `cfg(debug_assertions)` so release binaries pay nothing.
///
/// # Panics
///
/// Panics with the full report when the graph has any error-severity
/// finding.
pub fn debug_assert_verified(graph: &CnnGraph, context: &str) {
    let report = verify_graph(graph);
    assert!(
        !report.has_errors(),
        "graph verification failed at {context}:\n{report}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaflow_model::prelude::*;

    #[test]
    fn builtin_topologies_lint_clean() {
        let graphs = [
            topology::cnv_w2a2_cifar10().expect("builds"),
            topology::cnv_w1a2_cifar10().expect("builds"),
            topology::lenet(QuantSpec::w2a2(), 10).expect("builds"),
            topology::tiny(QuantSpec::w2a2(), 4).expect("builds"),
        ];
        for g in &graphs {
            let report = verify_graph(g);
            assert!(!report.has_errors(), "{}:\n{report}", g.name());
            // Margin reporting fires for every topology with MVTUs.
            assert!(report.fired("AF006"));
        }
    }

    #[test]
    fn accumulator_margin_reported_per_mvtu_layer() {
        let g = topology::cnv_w2a2_cifar10().expect("builds");
        let report = verify_graph(&g);
        let mvtus = g.iter().filter(|n| n.layer.is_mvtu()).count();
        let infos = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "AF006" && d.severity == Severity::Info)
            .count();
        assert_eq!(infos, mvtus, "one margin line per MVTU layer");
    }

    #[test]
    fn catalog_has_eleven_distinct_codes() {
        let v = Verifier::new();
        let codes: std::collections::BTreeSet<_> =
            v.catalog().into_iter().map(|(c, _)| c).collect();
        assert_eq!(codes.len(), 11);
        assert!(codes.contains("AF001"));
        assert!(codes.contains("AF009"));
        assert!(codes.contains("AF010"));
        assert!(codes.contains("AF011"));
    }

    #[test]
    fn packed_eligibility_reported_per_mvtu_layer() {
        let g = topology::cnv_w2a2_cifar10().expect("builds");
        let report = verify_graph(&g);
        let mvtus = g.iter().filter(|n| n.layer.is_mvtu()).count();
        let infos = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "AF009" && d.severity == Severity::Info)
            .count();
        // Every MVTU reports Info (the first layer's GEMM fallback on the
        // 8-bit input is expected, not a defect), none warns.
        assert_eq!(infos, mvtus, "one eligibility line per MVTU layer");
        assert!(!report
            .diagnostics
            .iter()
            .any(|d| d.code == "AF009" && d.severity != Severity::Info));
    }

    #[test]
    fn af009_warns_when_thresholds_imply_wide_activations() {
        // A 7-level (3-bit) threshold feeding a conv that declares W2A2:
        // the packed contract silently breaks, which AF009 must flag.
        let g = GraphBuilder::new("wide-acts", TensorShape::new(1, 8, 8))
            .conv2d(Conv2d::new(1, 4, 3, 1, 0, QuantSpec::w2a2()))
            .threshold(MultiThreshold::uniform(4, 7, -4, 4))
            .conv2d(Conv2d::new(4, 4, 3, 1, 0, QuantSpec::w2a2()))
            .threshold(MultiThreshold::uniform(4, 3, -4, 4))
            .dense(Dense::new(4 * 4 * 4, 4, QuantSpec::w2a2()))
            .label_select(4)
            .build()
            .expect("builds");
        let report = verify_graph(&g);
        let warns: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "AF009" && d.severity == Severity::Warn)
            .collect();
        assert_eq!(warns.len(), 1, "exactly the second conv warns:\n{report}");
        assert!(warns[0].message.contains("incoming activations reach 7"));
    }

    #[test]
    fn af009_stays_quiet_info_for_declared_wide_quant() {
        // LeNet at W4A4 is legitimately GEMM-bound: Info only, no warns.
        let g = topology::lenet(QuantSpec::new(4, 4), 10).expect("builds");
        let report = verify_graph(&g);
        assert!(report.fired("AF009"));
        assert!(!report
            .diagnostics
            .iter()
            .any(|d| d.code == "AF009" && d.severity == Severity::Warn));
    }

    #[test]
    fn allow_policy_suppresses_margin_reports() {
        let g = topology::tiny(QuantSpec::w2a2(), 4).expect("builds");
        let v = Verifier::new().with_config(LintConfig {
            allow: LintConfig::parse_codes("AF006"),
            deny: Default::default(),
        });
        assert!(!v.verify(&g).fired("AF006"));
    }

    /// A W8A8 dense layer whose fan-in and stored weights make the i32
    /// accumulator genuinely overflowable: both the domain bound (AF006)
    /// and the exact interval (AF010) reject it, so no demotion applies.
    fn reachable_overflow_graph() -> CnnGraph {
        let mut d = Dense::new(1 << 22, 1, QuantSpec::new(8, 8));
        d.weights.as_mut_slice().fill(127);
        GraphBuilder::new("overflow", TensorShape::flat(1 << 22))
            .dense(d)
            .label_select(1)
            .build()
            .expect("builds")
    }

    #[test]
    fn overflow_graph_fails_af006() {
        let report = verify_graph(&reachable_overflow_graph());
        assert!(report.has_errors());
        assert!(report.fired("AF006"));
        // The exact analysis agrees: the overflow is reachable.
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == "AF010" && d.severity == Severity::Error));
    }

    #[test]
    fn af006_error_demoted_when_interval_proves_safety() {
        // Same huge fan-in, but all-zero weights: the domain bound still
        // trips AF006, while the exact interval is [0, 0] — the error must
        // come back demoted to a Warn that mentions the proof.
        let g = GraphBuilder::new("overflow-demoted", TensorShape::flat(1 << 22))
            .dense(Dense::new(1 << 22, 1, QuantSpec::new(8, 8)))
            .label_select(1)
            .build()
            .expect("builds");
        let report = verify_graph(&g);
        assert!(
            !report.has_errors(),
            "demotion should clear errors:\n{report}"
        );
        let demoted: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "AF006" && d.severity == Severity::Warn)
            .collect();
        assert_eq!(demoted.len(), 1);
        assert!(demoted[0].message.contains("demoted"));
    }

    #[test]
    fn deny_af006_disables_demotion() {
        let g = GraphBuilder::new("overflow-denied", TensorShape::flat(1 << 22))
            .dense(Dense::new(1 << 22, 1, QuantSpec::new(8, 8)))
            .label_select(1)
            .build()
            .expect("builds");
        let v = Verifier::new().with_config(LintConfig {
            allow: Default::default(),
            deny: LintConfig::parse_codes("AF006"),
        });
        let report = v.verify(&g);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.code == "AF006" && d.severity == Severity::Error));
    }

    #[test]
    fn debug_guard_panics_on_bad_graph() {
        let g = reachable_overflow_graph();
        let caught = std::panic::catch_unwind(|| debug_assert_verified(&g, "test"));
        assert!(caught.is_err());
    }
}
