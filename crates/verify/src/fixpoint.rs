//! Generic worklist fixed-point solver over dataflow graphs.
//!
//! The verifier's deep analyses — value intervals ([`crate::interval`]),
//! steady-state rates ([`crate::rate`]) and FIFO liveness
//! ([`crate::liveness`]) — are all instances of abstract interpretation: a
//! per-node abstract value drawn from a join-semilattice, transfer functions
//! along edges, and iteration to the least fixed point. This module holds
//! the one engine they share.
//!
//! The solver is a classic chaotic-iteration worklist: every node starts at
//! its initial abstract value, a node is re-evaluated whenever one of its
//! predecessors changes, and iteration stops when no transfer changes
//! anything. Two mechanisms guarantee termination on lattices of unbounded
//! height:
//!
//! * **Widening** — after a node has been re-evaluated
//!   [`Config::widen_after`] times, the solver replaces plain `join` with
//!   the analysis-supplied widening operator, which must reach a stable
//!   value in finitely many steps (interval analysis widens to the
//!   conservative domain bound, mirroring the textbook jump-to-∞ policy);
//! * **an iteration fuse** — a hard cap of [`Config::max_iterations`]
//!   evaluations after which the solver gives up and reports
//!   `converged: false`. A sound widening operator makes the fuse
//!   unreachable; it exists so a buggy analysis degrades into a reported
//!   non-result instead of a hang inside a lint pass.
//!
//! For the feed-forward chains the CNN graphs produce today, the solver
//! visits each node once or twice; the machinery earns its keep on the
//! cyclic stage graphs of the rate analysis (producer/consumer coupling in
//! both directions) and keeps the door open for residual/branching
//! topologies.

/// A join-semilattice of abstract values.
pub trait Lattice: Clone + PartialEq {
    /// Least upper bound of `self` and `other`.
    #[must_use]
    fn join(&self, other: &Self) -> Self;
}

/// Solver tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of re-evaluations of one node before the widening operator
    /// replaces plain join.
    pub widen_after: usize,
    /// Hard cap on total transfer evaluations (the termination fuse).
    pub max_iterations: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            widen_after: 4,
            max_iterations: 100_000,
        }
    }
}

/// What the solver did on the way to (or short of) the fixed point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixpointStats {
    /// Total transfer-function evaluations.
    pub iterations: usize,
    /// Evaluations that applied the widening operator.
    pub widenings: usize,
    /// Whether a fixed point was reached within the iteration fuse.
    pub converged: bool,
}

/// Solution of one fixed-point run: the per-node abstract values plus the
/// iteration statistics.
#[derive(Debug, Clone)]
pub struct Solution<D> {
    /// Final abstract value per node.
    pub values: Vec<D>,
    /// Iteration statistics.
    pub stats: FixpointStats,
}

/// Runs the worklist solver.
///
/// * `init` — initial abstract value per node (node count is `init.len()`);
/// * `edges` — directed dependency edges `(from, to)`: when `from`'s value
///   changes, `to` is re-evaluated;
/// * `transfer` — computes node `n`'s new value from the current
///   environment (the slice of all node values). The solver joins the
///   result with the node's current value, so transfers need not be
///   monotone in isolation — the per-node sequence is forced ascending;
/// * `widen` — widening operator `∇(old, new)`, applied instead of join
///   once a node has been re-evaluated more than [`Config::widen_after`]
///   times. Must stabilize any ascending chain in finitely many steps.
///
/// # Panics
///
/// Panics if an edge endpoint is out of range.
#[must_use]
pub fn solve<D: Lattice>(
    init: Vec<D>,
    edges: &[(usize, usize)],
    config: Config,
    mut transfer: impl FnMut(usize, &[D]) -> D,
    widen: impl Fn(&D, &D) -> D,
) -> Solution<D> {
    let n = init.len();
    let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(from, to) in edges {
        assert!(
            from < n && to < n,
            "edge ({from}, {to}) out of range for {n} nodes"
        );
        successors[from].push(to);
    }
    let mut values = init;
    let mut visits = vec![0usize; n];
    let mut in_list = vec![true; n];
    // Deterministic FIFO worklist seeded with every node in index order, so
    // two runs over the same graph produce identical iteration statistics.
    let mut worklist: std::collections::VecDeque<usize> = (0..n).collect();
    let mut stats = FixpointStats {
        iterations: 0,
        widenings: 0,
        converged: true,
    };
    while let Some(node) = worklist.pop_front() {
        in_list[node] = false;
        if stats.iterations >= config.max_iterations {
            stats.converged = false;
            break;
        }
        stats.iterations += 1;
        visits[node] += 1;
        let computed = transfer(node, &values);
        let next = if visits[node] > config.widen_after {
            stats.widenings += 1;
            widen(&values[node], &computed)
        } else {
            values[node].join(&computed)
        };
        if next != values[node] {
            values[node] = next;
            for &succ in &successors[node] {
                if !in_list[succ] {
                    in_list[succ] = true;
                    worklist.push_back(succ);
                }
            }
        }
    }
    Solution { values, stats }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// u64 under max: the lattice of the rate analysis.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct MaxU64(u64);

    impl Lattice for MaxU64 {
        fn join(&self, other: &Self) -> Self {
            MaxU64(self.0.max(other.0))
        }
    }

    #[test]
    fn chain_converges_in_one_sweep() {
        // Max propagates along a chain: every node ends at the global max.
        let cycles = [5u64, 40, 5];
        let edges: Vec<(usize, usize)> = vec![(0, 1), (1, 2), (1, 0), (2, 1)];
        let sol = solve(
            cycles.iter().map(|&c| MaxU64(c)).collect(),
            &edges,
            Config::default(),
            |n, env| {
                let neighbors = edges
                    .iter()
                    .filter(|(_, to)| *to == n)
                    .map(|&(from, _)| env[from].0)
                    .max()
                    .unwrap_or(0);
                MaxU64(cycles[n].max(neighbors))
            },
            |_, new| *new,
        );
        assert!(sol.stats.converged);
        assert!(sol.values.iter().all(|v| v.0 == 40));
    }

    #[test]
    fn divergent_transfer_is_caught_by_widening() {
        // A transfer that keeps counting up: plain join never stabilizes,
        // the widening operator jumps to the fuse value and terminates.
        const TOP: u64 = u64::MAX;
        let sol = solve(
            vec![MaxU64(0); 2],
            &[(0, 1), (1, 0)],
            Config {
                widen_after: 3,
                max_iterations: 10_000,
            },
            |n, env| MaxU64(env[1 - n].0.saturating_add(1)),
            |_, _| MaxU64(TOP),
        );
        assert!(sol.stats.converged);
        assert!(sol.stats.widenings > 0);
        assert!(sol.values.iter().all(|v| v.0 == TOP));
    }

    #[test]
    fn fuse_reports_non_convergence() {
        // Same divergent system, but the "widening" fails to widen: the
        // fuse must trip and be reported, not hang.
        let sol = solve(
            vec![MaxU64(0); 2],
            &[(0, 1), (1, 0)],
            Config {
                widen_after: 3,
                max_iterations: 50,
            },
            |n, env| MaxU64(env[1 - n].0 + 1),
            |_, new| *new,
        );
        assert!(!sol.stats.converged);
    }

    #[test]
    fn empty_graph_is_trivially_solved() {
        let sol = solve(
            Vec::<MaxU64>::new(),
            &[],
            Config::default(),
            |_, _| unreachable!("no nodes to evaluate"),
            |_, new| *new,
        );
        assert!(sol.stats.converged);
        assert!(sol.values.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_rejected() {
        let _ = solve(
            vec![MaxU64(0)],
            &[(0, 7)],
            Config::default(),
            |_, _| MaxU64(0),
            |_, new| *new,
        );
    }
}
