//! Property-based and negative tests of the static verifier.
//!
//! Positive direction: every built-in topology (cnv/lenet/tiny across the
//! quantization variants) lints clean, as does every randomly generated
//! well-formed graph.
//!
//! Negative direction: each rule code `AF001`–`AF009` is proven to fire on
//! a graph corrupted in exactly the way the rule guards against. Graph
//! constructors validate their inputs, so corrupted graphs are built
//! through the serde backdoor: serialize to JSON, mutate the tree,
//! deserialize (the derives perform no validation).

use adaflow_model::prelude::*;
use adaflow_verify::{verify_graph, Severity};
use proptest::prelude::*;
use serde::Value;

// ---------------------------------------------------------------------------
// Mutation helpers
// ---------------------------------------------------------------------------

/// Serialize → mutate → deserialize. The mutated graph bypasses every
/// constructor check.
fn mutate_graph<F: FnOnce(&mut Value)>(graph: &CnnGraph, f: F) -> CnnGraph {
    let text = serde_json::to_string(graph).expect("serializes");
    let mut tree = serde_json::from_str_value(&text).expect("parses");
    f(&mut tree);
    let text = serde_json::to_string(&tree).expect("re-serializes");
    serde_json::from_str(&text).expect("deserializes")
}

fn field<'a>(v: &'a mut Value, key: &str) -> &'a mut Value {
    match v {
        Value::Object(entries) => entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .unwrap_or_else(|| panic!("missing key `{key}`")),
        other => panic!("expected object, got {}", other.kind()),
    }
}

fn item(v: &mut Value, idx: usize) -> &mut Value {
    match v {
        Value::Array(items) => &mut items[idx],
        other => panic!("expected array, got {}", other.kind()),
    }
}

fn node(tree: &mut Value, idx: usize) -> &mut Value {
    item(field(tree, "nodes"), idx)
}

/// Index of the first node whose layer is of `kind` (`"Conv2d"`, ...).
fn find_layer(graph: &CnnGraph, kind: &str) -> usize {
    graph
        .iter()
        .position(|n| n.layer.kind() == kind)
        .unwrap_or_else(|| panic!("graph has no {kind} layer"))
}

fn small_graph(quant: QuantSpec) -> CnnGraph {
    let levels = quant.threshold_levels();
    GraphBuilder::new("prop", TensorShape::new(1, 12, 12))
        .conv2d(Conv2d::new(1, 4, 3, 1, 0, quant))
        .threshold(MultiThreshold::uniform(4, levels, -64, 64))
        .max_pool(MaxPool2d::new(2, 2))
        .conv2d(Conv2d::new(4, 8, 3, 1, 0, quant))
        .threshold(MultiThreshold::uniform(8, levels, -64, 64))
        .dense(Dense::new(8 * 9, 4, quant))
        .label_select(4)
        .build()
        .expect("structurally valid")
}

// ---------------------------------------------------------------------------
// Positive: well-formed graphs lint clean
// ---------------------------------------------------------------------------

#[test]
fn all_builtin_topologies_lint_clean() {
    let builtins = [
        topology::cnv_w2a2_cifar10().expect("builds"),
        topology::cnv_w2a2_gtsrb().expect("builds"),
        topology::cnv_w1a2_cifar10().expect("builds"),
        topology::cnv_w1a2_gtsrb().expect("builds"),
        topology::lenet(QuantSpec::w2a2(), 10).expect("builds"),
        topology::lenet(QuantSpec::w1a2(), 10).expect("builds"),
        topology::tiny(QuantSpec::w2a2(), 4).expect("builds"),
        topology::tiny(QuantSpec::w1a2(), 10).expect("builds"),
    ];
    for g in &builtins {
        let report = verify_graph(g);
        assert!(!report.has_errors(), "{}:\n{report}", g.name());
        assert_eq!(report.count(Severity::Warn), 0, "{}:\n{report}", g.name());
    }
}

/// A randomized well-formed CNN.
fn arb_graph() -> impl Strategy<Value = CnnGraph> {
    (2usize..=6, 2usize..=8, 2usize..=6, proptest::bool::ANY).prop_map(
        |(c1_half, c2_half, classes, w1)| {
            let (c1, c2) = (c1_half * 2, c2_half * 2);
            let quant = if w1 {
                QuantSpec::w2a2() // keep zero legal: W1 excludes unfilled zeros
            } else {
                QuantSpec::new(4, 2)
            };
            let levels = quant.threshold_levels();
            GraphBuilder::new("prop", TensorShape::new(1, 12, 12))
                .conv2d(Conv2d::new(1, c1, 3, 1, 0, quant))
                .threshold(MultiThreshold::uniform(c1, levels, -64, 64))
                .max_pool(MaxPool2d::new(2, 2))
                .conv2d(Conv2d::new(c1, c2, 3, 1, 0, quant))
                .threshold(MultiThreshold::uniform(c2, levels, -64, 64))
                .dense(Dense::new(c2 * 9, classes, quant))
                .label_select(classes)
                .build()
                .expect("structurally valid by construction")
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every well-formed generated graph passes with zero errors.
    #[test]
    fn generated_graphs_lint_clean(graph in arb_graph()) {
        let report = verify_graph(&graph);
        prop_assert!(!report.has_errors(), "{report}");
    }

    /// Shape corruption at a random node is always caught by AF001.
    #[test]
    fn corrupted_shapes_fire_af001(graph in arb_graph(), pick in 0usize..7, grow in 1usize..50) {
        let bad = mutate_graph(&graph, |tree| {
            let shape = field(node(tree, pick), "output_shape");
            let channels = field(shape, "channels");
            let old = channels.as_u64().expect("channels is a number");
            *channels = Value::U64(old + grow as u64);
        });
        let report = verify_graph(&bad);
        prop_assert!(report.has_errors());
        prop_assert!(report.fired("AF001"), "{report}");
    }

    /// Any out-of-domain weight value is caught by AF003.
    #[test]
    fn corrupted_weights_fire_af003(graph in arb_graph(), value in 100i64..127) {
        let conv = find_layer(&graph, "conv2d");
        let bad = mutate_graph(&graph, |tree| {
            let layer = field(field(node(tree, conv), "layer"), "Conv2d");
            let data = field(field(layer, "weights"), "data");
            *item(data, 0) = Value::I64(value);
        });
        let report = verify_graph(&bad);
        prop_assert!(report.has_errors());
        prop_assert!(report.fired("AF003"), "{report}");
    }

    /// Breaking the ascending order of any threshold row fires AF004.
    #[test]
    fn unsorted_threshold_rows_fire_af004(graph in arb_graph(), channel in 0usize..4) {
        let thresh = find_layer(&graph, "multithreshold");
        let levels = 3usize;
        let bad = mutate_graph(&graph, |tree| {
            let layer = field(field(node(tree, thresh), "layer"), "MultiThreshold");
            let data = field(field(layer, "table"), "data");
            // First entry of the chosen row above the row's last entry.
            *item(data, channel * levels) = Value::I64(10_000);
        });
        let report = verify_graph(&bad);
        prop_assert!(report.has_errors());
        prop_assert!(report.fired("AF004"), "{report}");
    }

    /// Shrinking a threshold's channel count (an unpropagated pruning mask)
    /// fires AF007.
    #[test]
    fn inconsistent_pruning_masks_fire_af007(graph in arb_graph(), shrink in 1usize..4) {
        let thresh = find_layer(&graph, "multithreshold");
        let bad = mutate_graph(&graph, |tree| {
            let layer = field(field(node(tree, thresh), "layer"), "MultiThreshold");
            let channels = field(layer, "channels");
            let old = channels.as_u64().expect("channels is a number");
            *channels = Value::U64(old.saturating_sub(shrink as u64).max(1));
        });
        let report = verify_graph(&bad);
        prop_assert!(report.has_errors());
        prop_assert!(report.fired("AF007"), "{report}");
    }
}

// ---------------------------------------------------------------------------
// Negative: one deterministic corruption per remaining rule code
// ---------------------------------------------------------------------------

#[test]
fn weight_geometry_mismatch_fires_af002() {
    let g = small_graph(QuantSpec::w2a2());
    let conv = find_layer(&g, "conv2d");
    // Declare more filters than the weight tensor holds.
    let bad = mutate_graph(&g, |tree| {
        let layer = field(field(node(tree, conv), "layer"), "Conv2d");
        *field(layer, "out_channels") = Value::U64(5);
    });
    let report = verify_graph(&bad);
    assert!(report.has_errors());
    assert!(report.fired("AF002"), "{report}");
}

#[test]
fn undersized_threshold_table_fires_af005() {
    // A 1-level table after a W2A2 MVTU (which needs 2^2 - 1 = 3 levels).
    // Structurally buildable — level count vs producer quant is a
    // cross-layer property only the verifier checks.
    let g = GraphBuilder::new("bad-levels", TensorShape::new(1, 8, 8))
        .conv2d(Conv2d::new(1, 4, 3, 1, 0, QuantSpec::w2a2()))
        .threshold(MultiThreshold::uniform(4, 1, -64, 64))
        .dense(Dense::new(4 * 36, 4, QuantSpec::w2a2()))
        .label_select(4)
        .build()
        .expect("builds");
    let report = verify_graph(&g);
    assert!(report.has_errors());
    assert!(report.fired("AF005"), "{report}");
}

#[test]
fn unreachable_thresholds_warn_af005() {
    // Thresholds beyond the first conv's worst-case accumulator range
    // (9·1·255 = 2295) can never fire: Warn, not Error.
    let g = GraphBuilder::new("dead-levels", TensorShape::new(1, 8, 8))
        .conv2d(Conv2d::new(1, 4, 3, 1, 0, QuantSpec::w2a2()))
        .threshold(MultiThreshold::uniform(4, 3, -50_000, 50_000))
        .dense(Dense::new(4 * 36, 4, QuantSpec::w2a2()))
        .label_select(4)
        .build()
        .expect("builds");
    let report = verify_graph(&g);
    assert!(!report.has_errors(), "{report}");
    assert!(report.count(Severity::Warn) > 0);
    assert!(report.fired("AF005"), "{report}");
}

#[test]
fn accumulator_overflow_fires_af006() {
    // 2^22-wide W8A8 dense: 2^22 · 127 · 255 ≫ i32::MAX. The weights are
    // filled to the domain maximum so the overflow is *reachable* — the
    // exact interval analysis (AF010) would otherwise prove all-zero
    // weights safe and demote the AF006 error to a warning.
    let mut d = Dense::new(1 << 22, 1, QuantSpec::new(8, 8));
    d.weights.as_mut_slice().fill(127);
    let g = GraphBuilder::new("overflow", TensorShape::flat(1 << 22))
        .dense(d)
        .label_select(1)
        .build()
        .expect("builds");
    let report = verify_graph(&g);
    assert!(report.has_errors());
    let overflow = report
        .diagnostics
        .iter()
        .find(|d| d.code == "AF006" && d.severity == Severity::Error)
        .expect("AF006 error present");
    assert!(overflow.message.contains("exceeds i32::MAX"), "{overflow}");
}

#[test]
fn reachable_overflow_fires_af010() {
    // Same fixture as AF006's: the exact interval [0, 2^22·127·255] also
    // breaches i32, so AF010 independently reports the overflow as an
    // error (no demotion possible).
    let mut d = Dense::new(1 << 22, 1, QuantSpec::new(8, 8));
    d.weights.as_mut_slice().fill(127);
    let g = GraphBuilder::new("overflow-exact", TensorShape::flat(1 << 22))
        .dense(d)
        .label_select(1)
        .build()
        .expect("builds");
    let report = verify_graph(&g);
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code == "AF010" && d.severity == Severity::Error),
        "{report}"
    );
}

#[test]
fn dead_threshold_channels_warn_af011() {
    // All thresholds far above the first conv's reachable accumulator
    // range (9·1·255 = 2295): every channel's activation is the constant
    // 0 — dead hardware that AF011 must flag.
    let g = GraphBuilder::new("dead-channels", TensorShape::new(1, 8, 8))
        .conv2d(Conv2d::new(1, 4, 3, 1, 0, QuantSpec::w2a2()))
        .threshold(MultiThreshold::uniform(4, 3, 40_000, 50_000))
        .dense(Dense::new(4 * 36, 4, QuantSpec::w2a2()))
        .label_select(4)
        .build()
        .expect("builds");
    let report = verify_graph(&g);
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code == "AF011" && d.severity == Severity::Warn),
        "{report}"
    );
}

#[test]
fn missing_threshold_between_mvtus_fires_af008() {
    // conv → pool with no threshold: pools raw accumulators. Structurally
    // valid, not executable by the MVTU dataflow.
    let g = GraphBuilder::new("bad-alternation", TensorShape::new(1, 8, 8))
        .conv2d(Conv2d::new(1, 4, 3, 1, 0, QuantSpec::w2a2()))
        .max_pool(MaxPool2d::new(2, 2))
        .dense(Dense::new(4 * 9, 4, QuantSpec::w2a2()))
        .label_select(4)
        .build()
        .expect("builds");
    let report = verify_graph(&g);
    assert!(report.has_errors());
    assert!(report.fired("AF008"), "{report}");
}

#[test]
fn all_rule_codes_have_negative_coverage() {
    // Meta-test: the cases above plus the proptests cover AF001-AF011. This
    // is the single place that will fail if a code is renumbered.
    let codes: std::collections::BTreeSet<&str> = adaflow_verify::Verifier::new()
        .catalog()
        .into_iter()
        .map(|(code, _)| code)
        .collect();
    let expected: std::collections::BTreeSet<&str> = [
        "AF001", "AF002", "AF003", "AF004", "AF005", "AF006", "AF007", "AF008", "AF009", "AF010",
        "AF011",
    ]
    .into();
    assert_eq!(codes, expected);
}

#[test]
fn mismatched_packed_declaration_warns_af009() {
    // 7-level threshold feeding a W2A2 conv: declared packed-friendly,
    // effectively ineligible — AF009's negative case.
    let g = GraphBuilder::new("packed-miss", TensorShape::new(1, 8, 8))
        .conv2d(Conv2d::new(1, 4, 3, 1, 0, QuantSpec::w2a2()))
        .threshold(MultiThreshold::uniform(4, 7, -4, 4))
        .conv2d(Conv2d::new(4, 4, 3, 1, 0, QuantSpec::w2a2()))
        .threshold(MultiThreshold::uniform(4, 3, -4, 4))
        .dense(Dense::new(4 * 16, 4, QuantSpec::w2a2()))
        .label_select(4)
        .build()
        .expect("builds");
    let report = verify_graph(&g);
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code == "AF009" && d.severity == Severity::Warn),
        "{report}"
    );
}
