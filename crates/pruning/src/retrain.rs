//! Post-pruning retraining.
//!
//! The paper retrains every pruned model for 40 epochs (Brevitas, standard
//! augmentation). This module exposes that step behind a policy switch:
//!
//! * [`RetrainPolicy::Sgd`] runs the real STE trainer of `adaflow-nn` on a
//!   synthetic dataset — used for laptop-scale models and in tests, proving
//!   the retrain path end to end;
//! * [`RetrainPolicy::Analytical`] evaluates the calibrated accuracy model
//!   instead — used for CNV-scale library generation where real retraining
//!   is outside this reproduction's budget (DESIGN.md §1).

use crate::prune::PrunedModel;
use adaflow_nn::{AccuracyModel, NnError, SyntheticDataset, Trainer, TrainingConfig};
use adaflow_telemetry::{EventKind, SinkHandle};

/// How to obtain post-retrain accuracy for a pruned model.
#[derive(Debug, Clone)]
pub enum RetrainPolicy {
    /// Real STE SGD retraining on a synthetic dataset.
    Sgd {
        /// The dataset to retrain on.
        dataset: SyntheticDataset,
        /// Training hyper-parameters.
        config: TrainingConfig,
    },
    /// Analytical accuracy from the calibrated curve.
    Analytical(AccuracyModel),
}

/// Result of retraining one pruned model.
#[derive(Debug, Clone, PartialEq)]
pub struct RetrainOutcome {
    /// The (possibly updated) pruned model.
    pub model: PrunedModel,
    /// TOP-1 accuracy in percent after retraining.
    pub accuracy: f64,
}

/// Retrains (or analytically scores) a pruned model.
///
/// Under [`RetrainPolicy::Sgd`] the model's weights and thresholds are
/// replaced by the trained ones; under [`RetrainPolicy::Analytical`] the
/// model is returned unchanged with the curve's accuracy at the achieved
/// pruning rate.
///
/// # Errors
///
/// Propagates trainer errors (invalid config, non-executable graph).
pub fn retrain(model: PrunedModel, policy: &RetrainPolicy) -> Result<RetrainOutcome, NnError> {
    retrain_traced(model, policy, &SinkHandle::default())
}

/// [`retrain`] with telemetry: under [`RetrainPolicy::Sgd`] one
/// [`EventKind::RetrainEpoch`] event is emitted per epoch (the epoch ordinal
/// doubles as the event timestamp — retraining happens at design time,
/// outside the serving clock). The analytical policy emits nothing.
///
/// # Errors
///
/// Propagates trainer errors (invalid config, non-executable graph).
pub fn retrain_traced(
    model: PrunedModel,
    policy: &RetrainPolicy,
    sink: &SinkHandle,
) -> Result<RetrainOutcome, NnError> {
    match policy {
        RetrainPolicy::Analytical(curve) => {
            let accuracy = curve.accuracy_at(model.achieved_rate());
            Ok(RetrainOutcome { model, accuracy })
        }
        RetrainPolicy::Sgd { dataset, config } => {
            let trainer = Trainer::new(&model.graph, config.seed)?;
            let name = model.graph.name().to_string();
            let telemetry = sink.enabled();
            let (graph, report) = trainer.train_observed(dataset, config, |epoch, loss| {
                if telemetry {
                    sink.emit(
                        epoch as f64,
                        EventKind::RetrainEpoch {
                            model: name.clone(),
                            epoch: epoch as u64,
                            loss,
                        },
                    );
                }
            })?;
            let mut model = model;
            model.graph = graph.renamed(name);
            Ok(RetrainOutcome {
                model,
                accuracy: report.quantized_accuracy * 100.0,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FinnConfig;
    use crate::prune::DataflowAwarePruner;
    use adaflow_model::prelude::*;
    use adaflow_nn::{DatasetKind, DatasetSpec};

    fn tiny_pruned(rate: f64) -> PrunedModel {
        let g = topology::tiny(QuantSpec::w2a2(), 4).expect("builds");
        let cfg = FinnConfig::auto(&g).expect("auto");
        DataflowAwarePruner::new(cfg)
            .prune(&g, rate)
            .expect("prunes")
    }

    #[test]
    fn analytical_policy_uses_curve() {
        let model = tiny_pruned(0.25);
        let curve = AccuracyModel::calibrated(DatasetKind::Cifar10, QuantSpec::w2a2());
        let rate = model.achieved_rate();
        let out = retrain(model, &RetrainPolicy::Analytical(curve)).expect("retrains");
        assert!((out.accuracy - curve.accuracy_at(rate)).abs() < 1e-12);
    }

    #[test]
    fn analytical_accuracy_decreases_with_rate() {
        let curve = AccuracyModel::calibrated(DatasetKind::Cifar10, QuantSpec::w2a2());
        let policy = RetrainPolicy::Analytical(curve);
        let low = retrain(tiny_pruned(0.1), &policy).expect("retrains");
        let high = retrain(tiny_pruned(0.6), &policy).expect("retrains");
        assert!(high.model.achieved_rate() > low.model.achieved_rate());
        assert!(high.accuracy < low.accuracy);
    }

    #[test]
    fn sgd_policy_retrains_pruned_model() {
        let model = tiny_pruned(0.5);
        let dataset = SyntheticDataset::new(DatasetSpec::tiny(4), 3);
        let config = TrainingConfig {
            epochs: 5,
            batch_size: 16,
            learning_rate: 0.08,
            lr_decay: 0.8,
            train_samples: 160,
            eval_samples: 80,
            calibration_samples: 40,
            seed: 5,
        };
        let channels_before = model.conv_channels();
        let out = retrain(model, &RetrainPolicy::Sgd { dataset, config }).expect("retrains");
        // Structure preserved, accuracy above chance (25 %).
        assert_eq!(out.model.conv_channels(), channels_before);
        assert!(
            out.accuracy > 30.0,
            "retrained accuracy only {}",
            out.accuracy
        );
    }

    #[test]
    fn sgd_policy_keeps_model_name() {
        let model = tiny_pruned(0.4);
        let name = model.graph.name().to_string();
        let dataset = SyntheticDataset::new(DatasetSpec::tiny(4), 3);
        let config = TrainingConfig {
            epochs: 1,
            train_samples: 32,
            eval_samples: 16,
            calibration_samples: 16,
            ..TrainingConfig::default()
        };
        let out = retrain(model, &RetrainPolicy::Sgd { dataset, config }).expect("retrains");
        assert_eq!(out.model.graph.name(), name);
    }
}
