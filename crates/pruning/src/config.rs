//! FINN folding configuration.
//!
//! FINN configures each MVTU with a number of processing elements (PE) and
//! SIMD lanes (paper Fig. 2b). The user supplies these through a
//! configuration file; this module is that file's in-memory form, plus the
//! constraint checks FINN imposes:
//!
//! * `PE` must divide the layer's filter/neuron count (full output
//!   parallelism, no idle PEs);
//! * `SIMD` must divide the layer's input channel count (full input
//!   parallelism, no idle lanes).

use crate::error::PruneError;
use adaflow_model::{CnnGraph, Layer, LayerId};
use serde::{Deserialize, Serialize};

/// PE/SIMD folding of one MVTU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Folding {
    /// Processing elements — output-channel parallelism.
    pub pe: usize,
    /// SIMD lanes — input-channel parallelism.
    pub simd: usize,
}

impl Folding {
    /// Creates a folding pair.
    ///
    /// # Panics
    ///
    /// Panics if either value is zero.
    #[must_use]
    pub fn new(pe: usize, simd: usize) -> Self {
        assert!(pe > 0 && simd > 0, "folding parameters must be nonzero");
        Self { pe, simd }
    }
}

/// Folding assignment for every MVTU layer of a graph, in dataflow order.
///
/// The entry order matches the order of [`Layer::Conv2d`]/[`Layer::Dense`]
/// layers in the graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FinnConfig {
    entries: Vec<(LayerId, Folding)>,
}

impl FinnConfig {
    /// Builds a config from explicit per-MVTU foldings (in dataflow order)
    /// and validates it against the graph.
    ///
    /// # Errors
    ///
    /// Returns [`PruneError::ConfigMismatch`] if the count differs from the
    /// graph's MVTU count, or [`PruneError::InvalidFolding`] if a constraint
    /// is violated.
    pub fn new(graph: &CnnGraph, foldings: Vec<Folding>) -> Result<Self, PruneError> {
        let mvtus: Vec<LayerId> = graph
            .iter()
            .filter(|n| n.layer.is_mvtu())
            .map(|n| n.id)
            .collect();
        if mvtus.len() != foldings.len() {
            return Err(PruneError::ConfigMismatch(format!(
                "graph has {} MVTU layers, config provides {}",
                mvtus.len(),
                foldings.len()
            )));
        }
        let config = Self {
            entries: mvtus.into_iter().zip(foldings).collect(),
        };
        config.validate(graph)?;
        Ok(config)
    }

    /// The reference folding used throughout this reproduction for the CNV
    /// topology, mirroring the spirit of the FINN-examples CNV folding while
    /// keeping pruning granularity useful (see DESIGN.md §3):
    ///
    /// | layer | PE | SIMD |
    /// |---|---|---|
    /// | conv1 (3→64)    | 16 | 3 |
    /// | conv2 (64→64)   | 16 | 8 |
    /// | conv3 (64→128)  | 16 | 8 |
    /// | conv4 (128→128) | 16 | 8 |
    /// | conv5 (128→256) | 8  | 8 |
    /// | conv6 (256→256) | 8  | 8 |
    /// | fc1             | 4  | 8 |
    /// | fc2             | 4  | 8 |
    /// | fc3             | 1  | 4 |
    ///
    /// For non-CNV graphs, falls back to [`FinnConfig::auto`].
    ///
    /// # Errors
    ///
    /// Propagates validation errors (cannot occur for graphs built by
    /// [`adaflow_model::topology::cnv`]).
    pub fn cnv_reference(graph: &CnnGraph) -> Result<Self, PruneError> {
        let mvtu_count = graph.iter().filter(|n| n.layer.is_mvtu()).count();
        if mvtu_count != 9 {
            return Self::auto(graph);
        }
        let foldings = vec![
            Folding::new(16, 3),
            Folding::new(16, 8),
            Folding::new(16, 8),
            Folding::new(16, 8),
            Folding::new(8, 8),
            Folding::new(8, 8),
            Folding::new(4, 8),
            Folding::new(4, 8),
            Folding::new(1, 4),
        ];
        match Self::new(graph, foldings) {
            Ok(cfg) => Ok(cfg),
            // Non-CNV nine-MVTU graph: derive automatically instead.
            Err(_) => Self::auto(graph),
        }
    }

    /// Derives a legal folding automatically: the largest `PE ≤ 16` dividing
    /// each layer's output count and the largest `SIMD ≤ 8` dividing its
    /// input channel count. Both are additionally capped at a quarter of
    /// their dimension so the pruning constraints keep a useful granularity
    /// (a PE equal to the filter count would forbid any removal).
    ///
    /// # Errors
    ///
    /// Never fails for a valid graph; the `Result` mirrors [`FinnConfig::new`].
    pub fn auto(graph: &CnnGraph) -> Result<Self, PruneError> {
        let cap = |dim: usize, max: usize| largest_divisor_at_most(dim, max.min((dim / 4).max(1)));
        let foldings = graph
            .iter()
            .filter_map(|n| match &n.layer {
                Layer::Conv2d(c) => {
                    Some(Folding::new(cap(c.out_channels, 16), cap(c.in_channels, 8)))
                }
                Layer::Dense(d) => {
                    Some(Folding::new(cap(d.out_features, 16), cap(d.in_features, 8)))
                }
                _ => None,
            })
            .collect();
        Self::new(graph, foldings)
    }

    /// Validates every folding constraint against `graph`.
    ///
    /// # Errors
    ///
    /// Returns [`PruneError::InvalidFolding`] naming the first violating
    /// layer, or [`PruneError::ConfigMismatch`] if an entry references a
    /// non-MVTU layer.
    pub fn validate(&self, graph: &CnnGraph) -> Result<(), PruneError> {
        for &(id, folding) in &self.entries {
            let node = graph.node(id).map_err(PruneError::Model)?;
            let (out, inp) = match &node.layer {
                Layer::Conv2d(c) => (c.out_channels, c.in_channels),
                Layer::Dense(d) => (d.out_features, d.in_features),
                other => {
                    return Err(PruneError::ConfigMismatch(format!(
                        "layer {id} is {}, not an MVTU",
                        other.kind()
                    )));
                }
            };
            if out % folding.pe != 0 {
                return Err(PruneError::InvalidFolding {
                    layer: node.name.clone(),
                    reason: format!("PE {} does not divide {} filters/neurons", folding.pe, out),
                });
            }
            if inp % folding.simd != 0 {
                return Err(PruneError::InvalidFolding {
                    layer: node.name.clone(),
                    reason: format!(
                        "SIMD {} does not divide {} input channels",
                        folding.simd, inp
                    ),
                });
            }
        }
        Ok(())
    }

    /// Folding of the MVTU at `id`, if configured.
    #[must_use]
    pub fn folding(&self, id: LayerId) -> Option<Folding> {
        self.entries.iter().find(|(l, _)| *l == id).map(|&(_, f)| f)
    }

    /// All `(layer, folding)` entries in dataflow order.
    #[must_use]
    pub fn entries(&self) -> &[(LayerId, Folding)] {
        &self.entries
    }

    /// Folding of the first MVTU *after* `id` in dataflow order (the
    /// `SIMD_{i+1}` of the pruning constraint).
    #[must_use]
    pub fn next_folding_after(&self, id: LayerId) -> Option<Folding> {
        self.entries
            .iter()
            .find(|(l, _)| l.0 > id.0)
            .map(|&(_, f)| f)
    }
}

/// Largest divisor of `n` that is at most `cap` (at least 1).
fn largest_divisor_at_most(n: usize, cap: usize) -> usize {
    (1..=cap.min(n))
        .rev()
        .find(|d| n.is_multiple_of(*d))
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaflow_model::prelude::*;

    #[test]
    fn cnv_reference_validates() {
        let g = topology::cnv_w2a2_cifar10().expect("builds");
        let cfg = FinnConfig::cnv_reference(&g).expect("valid");
        assert_eq!(cfg.entries().len(), 9);
        // First conv: PE 16, SIMD 3 (matches 3 input channels).
        let first = cfg.entries()[0].1;
        assert_eq!((first.pe, first.simd), (16, 3));
    }

    #[test]
    fn auto_config_is_always_legal() {
        for graph in [
            topology::cnv_w2a2_cifar10().expect("builds"),
            topology::tiny(QuantSpec::w2a2(), 7).expect("builds"),
            topology::cnv_w1a2_gtsrb().expect("builds"),
        ] {
            let cfg = FinnConfig::auto(&graph).expect("auto");
            assert!(cfg.validate(&graph).is_ok());
        }
    }

    #[test]
    fn wrong_entry_count_rejected() {
        let g = topology::tiny(QuantSpec::w2a2(), 4).expect("builds");
        let err = FinnConfig::new(&g, vec![Folding::new(1, 1)]).unwrap_err();
        assert!(matches!(err, PruneError::ConfigMismatch(_)));
    }

    #[test]
    fn pe_constraint_enforced() {
        let g = topology::tiny(QuantSpec::w2a2(), 4).expect("builds");
        // tiny has convs 1→8, 8→16 and fc 144→4: PE 3 does not divide 8.
        let err = FinnConfig::new(
            &g,
            vec![Folding::new(3, 1), Folding::new(4, 8), Folding::new(1, 4)],
        )
        .unwrap_err();
        assert!(matches!(err, PruneError::InvalidFolding { .. }));
    }

    #[test]
    fn simd_constraint_enforced() {
        let g = topology::tiny(QuantSpec::w2a2(), 4).expect("builds");
        // conv2 has 8 input channels: SIMD 5 illegal.
        let err = FinnConfig::new(
            &g,
            vec![Folding::new(8, 1), Folding::new(4, 5), Folding::new(1, 4)],
        )
        .unwrap_err();
        assert!(matches!(err, PruneError::InvalidFolding { .. }));
    }

    #[test]
    fn next_folding_lookup() {
        let g = topology::cnv_w2a2_cifar10().expect("builds");
        let cfg = FinnConfig::cnv_reference(&g).expect("valid");
        let convs = g.conv_ids();
        // After conv1 comes conv2 with SIMD 8.
        let next = cfg.next_folding_after(convs[0]).expect("exists");
        assert_eq!(next.simd, 8);
        // After the last MVTU (fc3) there is nothing.
        let last_mvtu = cfg.entries().last().expect("entries").0;
        assert_eq!(cfg.next_folding_after(last_mvtu), None);
    }

    #[test]
    fn largest_divisor_helper() {
        assert_eq!(largest_divisor_at_most(64, 16), 16);
        assert_eq!(largest_divisor_at_most(10, 16), 10);
        assert_eq!(largest_divisor_at_most(7, 4), 1);
        assert_eq!(largest_divisor_at_most(12, 8), 6);
    }

    #[test]
    fn folding_lookup_by_layer() {
        let g = topology::cnv_w2a2_cifar10().expect("builds");
        let cfg = FinnConfig::cnv_reference(&g).expect("valid");
        let convs = g.conv_ids();
        assert!(cfg.folding(convs[0]).is_some());
        assert!(cfg.folding(LayerId(1)).is_none()); // threshold layer
    }
}
