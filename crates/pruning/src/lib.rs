//! # adaflow-pruning — dataflow-aware filter pruning
//!
//! Implements the paper's §IV-A1: filter pruning that respects the folding
//! constraints of the target FINN dataflow so every pruned model remains
//! loadable by its accelerator with no idle PEs or SIMD lanes.
//!
//! For every convolution layer `i` with `ch_out` filters and requested
//! removal `r_i`, the pruner enforces
//!
//! ```text
//! (ch_out_i − r_i) mod PE_i       == 0
//! (ch_out_i − r_i) mod SIMD_{i+1} == 0
//! ```
//!
//! decreasing `r_i` until both hold (`PE_i` is the layer's own MVTU
//! parallelism, `SIMD_{i+1}` the *next* MVTU's input parallelism). Filters
//! are selected by ascending ℓ1-norm, following Li et al. (ICLR'17), and the
//! removal is propagated structurally: the following threshold table loses
//! the same channels, the next convolution loses input channels, and a
//! following dense layer loses the corresponding flattened features.
//!
//! ## Quickstart
//!
//! ```
//! use adaflow_model::prelude::*;
//! use adaflow_pruning::{DataflowAwarePruner, FinnConfig};
//!
//! let graph = topology::cnv_w2a2_cifar10()?;
//! let folding = FinnConfig::cnv_reference(&graph)?;
//! let pruner = DataflowAwarePruner::new(folding);
//! let pruned = pruner.prune(&graph, 0.25)?;
//! assert!(pruned.achieved_rate() > 0.0);
//! assert!(pruned.graph.total_macs() < graph.total_macs());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod error;
pub mod prune;
pub mod retrain;
pub mod selection;

pub use config::{FinnConfig, Folding};
pub use error::PruneError;
pub use prune::{DataflowAwarePruner, LayerPrune, PrunedModel};
pub use retrain::{retrain, retrain_traced, RetrainOutcome, RetrainPolicy};
pub use selection::select_filters_l1;
