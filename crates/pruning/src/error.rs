//! Error types for pruning.

use adaflow_model::ModelError;
use thiserror::Error;

/// Errors produced by folding configuration or the pruning transform.
#[derive(Debug, Clone, PartialEq, Error)]
#[non_exhaustive]
pub enum PruneError {
    /// The folding configuration does not match the graph's MVTU layers.
    #[error("folding config mismatch: {0}")]
    ConfigMismatch(String),

    /// A folding parameter violates a FINN constraint (PE must divide the
    /// filter/neuron count; SIMD must divide the input channel count).
    #[error("invalid folding for {layer}: {reason}")]
    InvalidFolding {
        /// Name of the offending layer.
        layer: String,
        /// Violated constraint.
        reason: String,
    },

    /// The requested pruning rate is outside `[0, 1)`.
    #[error("pruning rate {0} outside [0, 1)")]
    RateOutOfRange(f64),

    /// Graph transformation failed.
    #[error(transparent)]
    Model(#[from] ModelError),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PruneError>();
    }

    #[test]
    fn messages_are_lowercase() {
        let e = PruneError::RateOutOfRange(1.5);
        assert_eq!(e.to_string(), "pruning rate 1.5 outside [0, 1)");
    }
}
