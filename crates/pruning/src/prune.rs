//! The dataflow-aware pruning transform.

use crate::config::FinnConfig;
use crate::error::PruneError;
use crate::selection::select_filters_l1;
use adaflow_model::{CnnGraph, Layer, LayerId};
use serde::{Deserialize, Serialize};

/// Record of what was pruned in one convolution layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerPrune {
    /// The convolution layer.
    pub layer: LayerId,
    /// Its name in the graph.
    pub name: String,
    /// Filter count before pruning.
    pub original: usize,
    /// Filter count after pruning.
    pub kept: usize,
    /// Indices of removed filters (in the original numbering).
    pub removed: Vec<usize>,
}

impl LayerPrune {
    /// Fraction of this layer's filters that were removed.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.removed.len() as f64 / self.original as f64
    }
}

/// A pruned CNN model with its pruning metadata.
///
/// The metadata (per-layer channel counts) is exactly what the paper
/// "attaches to the model description" for the flexible accelerator's
/// runtime-controllable parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrunedModel {
    /// The pruned graph (validated, executable).
    pub graph: CnnGraph,
    /// The rate requested from the pruner (`0.05`, `0.10`, ...).
    pub requested_rate: f64,
    /// Per-conv-layer pruning records.
    pub layers: Vec<LayerPrune>,
    /// MACs of the original (unpruned) model.
    pub original_macs: u64,
}

impl PrunedModel {
    /// Overall achieved pruning rate: removed filters over original filters.
    /// May be lower than [`PrunedModel::requested_rate`] because the
    /// divisibility constraints round each layer's removal down.
    #[must_use]
    pub fn achieved_rate(&self) -> f64 {
        let original: usize = self.layers.iter().map(|l| l.original).sum();
        let removed: usize = self.layers.iter().map(|l| l.removed.len()).sum();
        if original == 0 {
            0.0
        } else {
            removed as f64 / original as f64
        }
    }

    /// MAC reduction factor versus the original model (`>= 1`).
    #[must_use]
    pub fn mac_reduction(&self) -> f64 {
        let macs = self.graph.total_macs().max(1);
        self.original_macs as f64 / macs as f64
    }

    /// Per-conv-layer channel counts of the pruned model — the runtime
    /// `channels` vector shipped to flexible accelerators.
    #[must_use]
    pub fn conv_channels(&self) -> Vec<usize> {
        self.graph.conv_channels()
    }
}

/// The pruner of paper §IV-A1.
///
/// Holds the FINN folding configuration whose PE/SIMD values constrain every
/// removal; see the crate docs for the constraint statement.
#[derive(Debug, Clone)]
pub struct DataflowAwarePruner {
    config: FinnConfig,
}

impl DataflowAwarePruner {
    /// Creates a pruner for a given folding configuration.
    #[must_use]
    pub fn new(config: FinnConfig) -> Self {
        Self { config }
    }

    /// The folding configuration in use.
    #[must_use]
    pub fn config(&self) -> &FinnConfig {
        &self.config
    }

    /// Prunes `graph` at `rate` (fraction of filters to remove per conv
    /// layer, in `[0, 1)`), honoring the dataflow constraints.
    ///
    /// # Errors
    ///
    /// Returns [`PruneError::RateOutOfRange`] for an illegal rate,
    /// [`PruneError::ConfigMismatch`] if the folding config does not match
    /// the graph, or a [`PruneError::Model`] if the transformed graph fails
    /// validation (indicates an internal bug; surfaced rather than
    /// panicking).
    pub fn prune(&self, graph: &CnnGraph, rate: f64) -> Result<PrunedModel, PruneError> {
        if !(0.0..1.0).contains(&rate) {
            return Err(PruneError::RateOutOfRange(rate));
        }
        self.config.validate(graph)?;

        let original_macs = graph.total_macs();
        let mut chain = graph.to_layer_chain();
        let mut records = Vec::new();

        for idx in 0..chain.len() {
            let id = LayerId(idx);
            let (ch_out, name) = match &chain[idx].1 {
                Layer::Conv2d(c) => (c.out_channels, chain[idx].0.clone()),
                _ => continue,
            };
            let folding = self.config.folding(id).ok_or_else(|| {
                PruneError::ConfigMismatch(format!("no folding for conv layer {id}"))
            })?;
            // SIMD constraint of the next MVTU, expressed at channel
            // granularity. When the next MVTU is a dense layer fed through a
            // flatten, each removed channel removes `spatial` consecutive
            // features, so the channel modulus is `simd / gcd(simd, spatial)`
            // (the paper's `(ch_out - r) mod SIMD_{i+1}` with spatial = 1).
            let simd_modulus = next_mvtu_channel_modulus(&chain, idx, ch_out, &self.config)?;

            // Requested removal, decreased until the constraints hold.
            let mut r = (rate * ch_out as f64).round() as usize;
            r = r.min(ch_out - 1);
            while r > 0
                && !((ch_out - r).is_multiple_of(folding.pe)
                    && (ch_out - r).is_multiple_of(simd_modulus))
            {
                r -= 1;
            }

            let removed = if r == 0 {
                Vec::new()
            } else {
                match &chain[idx].1 {
                    Layer::Conv2d(c) => select_filters_l1(&c.weights, r),
                    _ => unreachable!("checked above"),
                }
            };

            if !removed.is_empty() {
                apply_removal(&mut chain, idx, &removed, ch_out)?;
            }

            records.push(LayerPrune {
                layer: id,
                name,
                original: ch_out,
                kept: ch_out - removed.len(),
                removed,
            });
        }

        let percent = (rate * 100.0).round() as u32;
        let pruned = graph
            .with_layers(chain)
            .map_err(PruneError::Model)?
            .renamed(format!("{}-p{percent:02}", graph.name()));
        // Debug builds re-verify the transformed graph: any error here is a
        // propagation bug in the pruner itself, so panicking is correct.
        #[cfg(debug_assertions)]
        adaflow_verify::debug_assert_verified(&pruned, "DataflowAwarePruner::prune");
        Ok(PrunedModel {
            graph: pruned,
            requested_rate: rate,
            layers: records,
            original_macs,
        })
    }

    /// Prunes at every rate in `rates`, returning one model per rate.
    ///
    /// # Errors
    ///
    /// Propagates the first pruning failure.
    pub fn prune_sweep(
        &self,
        graph: &CnnGraph,
        rates: &[f64],
    ) -> Result<Vec<PrunedModel>, PruneError> {
        rates.iter().map(|&r| self.prune(graph, r)).collect()
    }
}

/// Channel-granularity modulus imposed by the next MVTU's SIMD lanes on the
/// conv at `idx` (see the call site for the derivation).
fn next_mvtu_channel_modulus(
    chain: &[(String, Layer)],
    idx: usize,
    ch_out: usize,
    config: &FinnConfig,
) -> Result<usize, PruneError> {
    for (j, item) in chain.iter().enumerate().skip(idx + 1) {
        let simd = match &item.1 {
            Layer::Conv2d(_) | Layer::Dense(_) => {
                config.folding(LayerId(j)).map(|f| f.simd).ok_or_else(|| {
                    PruneError::ConfigMismatch(format!("no folding for MVTU layer L{j}"))
                })?
            }
            _ => continue,
        };
        return Ok(match &item.1 {
            Layer::Dense(d) => {
                let spatial = d.in_features / ch_out;
                simd / gcd(simd, spatial.max(1))
            }
            _ => simd,
        });
    }
    Ok(1) // no downstream MVTU constrains the removal
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Removes `removed` output channels from the conv at `idx` and propagates
/// the removal downstream to the next MVTU.
fn apply_removal(
    chain: &mut [(String, Layer)],
    idx: usize,
    removed: &[usize],
    ch_out: usize,
) -> Result<(), PruneError> {
    // 1. The convolution itself loses filters.
    if let Layer::Conv2d(c) = &mut chain[idx].1 {
        c.weights = c
            .weights
            .without_filters(removed)
            .map_err(PruneError::Model)?;
        c.out_channels -= removed.len();
    }

    // 2. Propagate to downstream layers until (and including) the next MVTU.
    for item in chain.iter_mut().skip(idx + 1) {
        match &mut item.1 {
            Layer::MultiThreshold(t) => {
                t.table = t
                    .table
                    .without_channels(removed)
                    .map_err(PruneError::Model)?;
                t.channels -= removed.len();
            }
            Layer::MaxPool2d(_) => {} // channel-agnostic; keep walking
            Layer::Conv2d(next) => {
                next.weights = next
                    .weights
                    .without_input_channels(removed)
                    .map_err(PruneError::Model)?;
                next.in_channels -= removed.len();
                return Ok(());
            }
            Layer::Dense(next) => {
                // Flattened features: each channel owns `spatial` consecutive
                // features (CHW layout).
                let spatial = next.in_features / ch_out;
                debug_assert_eq!(next.in_features % ch_out, 0, "flatten misalignment");
                let features: Vec<usize> = removed
                    .iter()
                    .flat_map(|&c| (0..spatial).map(move |s| c * spatial + s))
                    .collect();
                next.weights = next
                    .weights
                    .without_input_features(&features)
                    .map_err(PruneError::Model)?;
                next.in_features -= features.len();
                return Ok(());
            }
            Layer::LabelSelect(_) => {
                return Err(PruneError::ConfigMismatch(
                    "convolution feeds label-select directly; cannot propagate pruning".into(),
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaflow_model::prelude::*;
    use adaflow_nn::{Activations, Engine};

    fn cnv_pruner() -> (CnnGraph, DataflowAwarePruner) {
        let g = topology::cnv_w2a2_cifar10().expect("builds");
        let cfg = FinnConfig::cnv_reference(&g).expect("valid");
        (g, DataflowAwarePruner::new(cfg))
    }

    #[test]
    fn zero_rate_changes_nothing() {
        let (g, pruner) = cnv_pruner();
        let p = pruner.prune(&g, 0.0).expect("prunes");
        assert_eq!(p.achieved_rate(), 0.0);
        assert_eq!(p.conv_channels(), g.conv_channels());
        assert_eq!(p.graph.total_macs(), g.total_macs());
    }

    #[test]
    fn rate_out_of_range_rejected() {
        let (g, pruner) = cnv_pruner();
        assert!(matches!(
            pruner.prune(&g, 1.0),
            Err(PruneError::RateOutOfRange(_))
        ));
        assert!(matches!(
            pruner.prune(&g, -0.1),
            Err(PruneError::RateOutOfRange(_))
        ));
    }

    #[test]
    fn constraints_hold_across_sweep() {
        let (g, pruner) = cnv_pruner();
        let cfg = pruner.config().clone();
        for step in 0..=17 {
            let rate = step as f64 * 0.05;
            let p = pruner.prune(&g, rate).expect("prunes");
            for rec in &p.layers {
                let folding = cfg.folding(rec.layer).expect("folding");
                assert_eq!(rec.kept % folding.pe, 0, "PE constraint at {}", rec.name);
                if let Some(next) = cfg.next_folding_after(rec.layer) {
                    assert_eq!(rec.kept % next.simd, 0, "SIMD constraint at {}", rec.name);
                }
            }
            // Folding config must stay valid for the pruned model too.
            let pruned_cfg =
                FinnConfig::new(&p.graph, cfg.entries().iter().map(|&(_, f)| f).collect());
            assert!(
                pruned_cfg.is_ok(),
                "folding invalid after pruning at rate {rate}"
            );
        }
    }

    #[test]
    fn achieved_rate_never_exceeds_requested_per_layer() {
        let (g, pruner) = cnv_pruner();
        for step in 1..=17 {
            let rate = step as f64 * 0.05;
            let p = pruner.prune(&g, rate).expect("prunes");
            for rec in &p.layers {
                // round(rate*ch) can exceed rate*ch by < 1 filter; allow it.
                assert!(
                    rec.removed.len() as f64 <= rate * rec.original as f64 + 1.0,
                    "layer {} removed {} of {} at rate {rate}",
                    rec.name,
                    rec.removed.len(),
                    rec.original
                );
            }
        }
    }

    #[test]
    fn macs_decrease_monotonically() {
        let (g, pruner) = cnv_pruner();
        let mut prev = u64::MAX;
        for step in 0..=17 {
            let p = pruner.prune(&g, step as f64 * 0.05).expect("prunes");
            let macs = p.graph.total_macs();
            assert!(macs <= prev, "MACs increased at step {step}");
            prev = macs;
        }
    }

    #[test]
    fn mac_reduction_is_roughly_quadratic() {
        // Paper §II: filter pruning has a roughly quadratic effect because
        // both ch_out of layer i and ch_in of layer i+1 shrink.
        let (g, pruner) = cnv_pruner();
        let p = pruner.prune(&g, 0.5).expect("prunes");
        let achieved = p.achieved_rate();
        let keep = 1.0 - achieved;
        let reduction = p.mac_reduction();
        // Pure quadratic would give 1/keep^2; first layer (fixed 3 input
        // channels) and FC tail dilute it. Expect clearly superlinear.
        assert!(
            reduction > 1.0 / keep * 1.2,
            "reduction {reduction} not superlinear for keep {keep}"
        );
    }

    #[test]
    fn pruned_cnv_remains_executable() {
        let (g, pruner) = cnv_pruner();
        let p = pruner.prune(&g, 0.25).expect("prunes");
        assert!(Engine::new(&p.graph).is_ok());
    }

    #[test]
    fn pruned_tiny_runs_inference() {
        let g = topology::tiny(QuantSpec::w2a2(), 4).expect("builds");
        let cfg = FinnConfig::auto(&g).expect("auto");
        let pruner = DataflowAwarePruner::new(cfg);
        let p = pruner.prune(&g, 0.4).expect("prunes");
        assert!(p.achieved_rate() > 0.0);
        let engine = Engine::new(&p.graph).expect("engine");
        let mut img = Activations::zeroed(p.graph.input_shape());
        for (i, v) in img.as_mut_slice().iter_mut().enumerate() {
            *v = (i % 256) as u8;
        }
        let r = engine.run(&img).expect("runs");
        assert!(r.label < 4);
    }

    #[test]
    fn pruned_name_encodes_rate() {
        let (g, pruner) = cnv_pruner();
        let p = pruner.prune(&g, 0.25).expect("prunes");
        assert_eq!(p.graph.name(), "cnv-w2a2-cifar10-p25");
    }

    #[test]
    fn sweep_generates_all_rates() {
        let (g, pruner) = cnv_pruner();
        let rates: Vec<f64> = (0..18).map(|s| s as f64 * 0.05).collect();
        let models = pruner.prune_sweep(&g, &rates).expect("sweep");
        assert_eq!(models.len(), 18);
        // The paper's library: models get strictly smaller at the top end.
        assert!(models[17].graph.total_macs() < models[0].graph.total_macs() / 4);
    }

    #[test]
    fn layer_records_are_consistent() {
        let (g, pruner) = cnv_pruner();
        let p = pruner.prune(&g, 0.3).expect("prunes");
        assert_eq!(p.layers.len(), 6);
        for rec in &p.layers {
            assert_eq!(rec.original - rec.removed.len(), rec.kept);
            assert!(rec.removed.windows(2).all(|w| w[0] < w[1]));
        }
        // Graph channels match the records.
        let kept: Vec<usize> = p.layers.iter().map(|l| l.kept).collect();
        assert_eq!(kept, p.conv_channels());
    }

    #[test]
    fn pruning_keeps_high_l1_filters() {
        let g = topology::tiny(QuantSpec::w2a2(), 4).expect("builds");
        let original_norms = {
            let (_, conv) = g.conv_layers().next().expect("conv");
            conv.weights.filter_l1_norms()
        };
        let cfg = FinnConfig::auto(&g).expect("auto");
        let p = DataflowAwarePruner::new(cfg)
            .prune(&g, 0.5)
            .expect("prunes");
        let rec = &p.layers[0];
        if rec.removed.is_empty() {
            return; // constraints may forbid pruning this layer entirely
        }
        let max_removed = rec
            .removed
            .iter()
            .map(|&i| original_norms[i])
            .max()
            .expect("removed set checked non-empty above");
        let kept: Vec<u64> = (0..rec.original)
            .filter(|i| !rec.removed.contains(i))
            .map(|i| original_norms[i])
            .collect();
        let min_kept = kept
            .iter()
            .min()
            .copied()
            .expect("pruner always keeps at least one filter");
        assert!(
            max_removed <= min_kept,
            "kept a weaker filter than one removed"
        );
    }
}
