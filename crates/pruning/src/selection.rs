//! ℓ1-norm filter selection.
//!
//! AdaFlow reuses the filter-importance criterion of Li et al., "Pruning
//! filters for efficient convnets" (ICLR'17): a filter's importance is the
//! sum of the absolute values of its weights; the least important filters
//! are removed first.

use adaflow_model::ConvWeights;

/// Selects the `count` least-important filters of `weights` by ascending
/// ℓ1-norm. Ties are broken by filter index (lower index pruned first) so
/// selection is deterministic. The result is sorted ascending, ready for
/// [`ConvWeights::without_filters`].
///
/// # Panics
///
/// Panics if `count >= weights.out_channels()` — removing every filter (or
/// more) is never legal.
///
/// ```
/// use adaflow_model::ConvWeights;
/// use adaflow_pruning::select_filters_l1;
///
/// let mut w = ConvWeights::zeroed(3, 1, 1);
/// w.set(0, 0, 0, 0, 5); // strongest
/// w.set(1, 0, 0, 0, 1); // weakest
/// w.set(2, 0, 0, 0, 3);
/// assert_eq!(select_filters_l1(&w, 2), vec![1, 2]);
/// ```
#[must_use]
pub fn select_filters_l1(weights: &ConvWeights, count: usize) -> Vec<usize> {
    assert!(
        count < weights.out_channels(),
        "cannot remove {count} of {} filters",
        weights.out_channels()
    );
    let norms = weights.filter_l1_norms();
    let mut order: Vec<usize> = (0..norms.len()).collect();
    order.sort_by_key(|&i| (norms[i], i));
    let mut selected: Vec<usize> = order.into_iter().take(count).collect();
    selected.sort_unstable();
    selected
}

#[cfg(test)]
mod tests {
    use super::*;

    fn weights_with_norms(norms: &[i8]) -> ConvWeights {
        let mut w = ConvWeights::zeroed(norms.len(), 1, 1);
        for (i, &n) in norms.iter().enumerate() {
            w.set(i, 0, 0, 0, n);
        }
        w
    }

    #[test]
    fn selects_lowest_norm_filters() {
        let w = weights_with_norms(&[4, 1, 3, 2]);
        assert_eq!(select_filters_l1(&w, 1), vec![1]);
        assert_eq!(select_filters_l1(&w, 2), vec![1, 3]);
        assert_eq!(select_filters_l1(&w, 3), vec![1, 2, 3]);
    }

    #[test]
    fn zero_count_selects_nothing() {
        let w = weights_with_norms(&[1, 2]);
        assert!(select_filters_l1(&w, 0).is_empty());
    }

    #[test]
    fn ties_break_by_index() {
        let w = weights_with_norms(&[2, 2, 2, 2]);
        assert_eq!(select_filters_l1(&w, 2), vec![0, 1]);
    }

    #[test]
    fn uses_absolute_values() {
        let w = weights_with_norms(&[-5, 1, -2]);
        // |−5| = 5 strongest; weakest are 1 and |−2| = 2.
        assert_eq!(select_filters_l1(&w, 2), vec![1, 2]);
    }

    #[test]
    fn result_is_sorted() {
        let w = weights_with_norms(&[1, 9, 0, 8, 2]);
        let sel = select_filters_l1(&w, 3);
        assert!(sel.windows(2).all(|p| p[0] < p[1]));
        assert_eq!(sel, vec![0, 2, 4]);
    }

    #[test]
    #[should_panic(expected = "cannot remove")]
    fn removing_all_filters_panics() {
        let w = weights_with_norms(&[1, 2]);
        let _ = select_filters_l1(&w, 2);
    }
}
