//! Design-time library generation with *real* SGD retraining (laptop-scale
//! stand-in for the paper's 40-epoch Brevitas retraining), end to end: the
//! library's accuracy column comes from actually training each pruned model
//! on a synthetic dataset and evaluating it with the integer engine.

use adaflow::{LibraryGenerator, RuntimeConfig, RuntimeManager};
use adaflow_hls::FpgaDevice;
use adaflow_model::prelude::*;
use adaflow_nn::{DatasetKind, DatasetSpec, SyntheticDataset, TrainingConfig};
use adaflow_pruning::{FinnConfig, RetrainPolicy};

fn sgd_policy() -> RetrainPolicy {
    RetrainPolicy::Sgd {
        dataset: SyntheticDataset::new(DatasetSpec::tiny(4), 3),
        config: TrainingConfig {
            epochs: 5,
            batch_size: 16,
            learning_rate: 0.08,
            lr_decay: 0.8,
            train_samples: 160,
            eval_samples: 80,
            calibration_samples: 40,
            seed: 5,
        },
    }
}

#[test]
fn library_with_real_retraining() {
    let graph = topology::tiny(QuantSpec::w2a2(), 4).expect("builds");
    let folding = FinnConfig::auto(&graph).expect("auto");
    let generator = LibraryGenerator {
        pruning_rates: vec![0.0, 0.5],
        device: FpgaDevice::z7020(),
        folding: Some(folding),
    };
    let library = generator
        .generate_with_policy(&graph, DatasetKind::Cifar10, &sgd_policy())
        .expect("generates");

    assert_eq!(library.entries().len(), 2);
    // Real measured accuracies: both models must clearly beat 4-class
    // chance (25 %) after their training runs.
    for entry in library.entries() {
        assert!(
            entry.accuracy > 40.0,
            "{} reached only {:.1}%",
            entry.name,
            entry.accuracy
        );
    }
    // The pruned model is faster on its fixed accelerator.
    let (base, pruned) = (&library.entries()[0], &library.entries()[1]);
    assert!(pruned.achieved_rate > 0.0);
    assert!(pruned.fixed.throughput_fps > base.fixed.throughput_fps);

    // And the runtime manager serves from measured numbers: a workload
    // beyond the base model's throughput selects the (SGD-retrained)
    // pruned model, provided it survived within the threshold.
    let mut manager = RuntimeManager::new(
        &library,
        RuntimeConfig {
            // Tiny-model training is noisy; use a generous threshold so the
            // pruned entry stays eligible.
            accuracy_threshold_points: 40.0,
            ..RuntimeConfig::default()
        },
    );
    let d = manager.decide(0.0, base.fixed.throughput_fps * 1.5);
    assert_eq!(d.model_name, pruned.name);
}

#[test]
fn sgd_and_analytical_libraries_share_structure() {
    let graph = topology::tiny(QuantSpec::w2a2(), 4).expect("builds");
    let folding = FinnConfig::auto(&graph).expect("auto");
    let generator = LibraryGenerator {
        pruning_rates: vec![0.0, 0.5],
        device: FpgaDevice::z7020(),
        folding: Some(folding),
    };
    let sgd = generator
        .generate_with_policy(&graph, DatasetKind::Cifar10, &sgd_policy())
        .expect("generates");
    let analytical = generator
        .generate(&graph, DatasetKind::Cifar10)
        .expect("generates");

    // Hardware-side columns are identical regardless of how accuracy was
    // obtained; only the accuracy values differ.
    for (a, b) in sgd.entries().iter().zip(analytical.entries()) {
        assert_eq!(a.conv_channels, b.conv_channels);
        assert_eq!(a.fixed.resources, b.fixed.resources);
        assert_eq!(a.fixed.throughput_fps, b.fixed.throughput_fps);
        assert_eq!(a.weight_bits, b.weight_bits);
    }
    assert_eq!(sgd.flexible.resources, analytical.flexible.resources);
}
