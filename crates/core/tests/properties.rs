//! Property-based tests on the Runtime Manager's decision invariants.

use adaflow::prelude::*;
use adaflow_model::prelude::*;
use adaflow_nn::DatasetKind;
use proptest::prelude::*;
use std::sync::OnceLock;

/// Library generation is expensive; share one across cases.
fn library() -> &'static Library {
    static LIB: OnceLock<Library> = OnceLock::new();
    LIB.get_or_init(|| {
        LibraryGenerator::default_edge_setup()
            .generate(
                &topology::cnv_w2a2_cifar10().expect("builds"),
                DatasetKind::Cifar10,
            )
            .expect("generates")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under any workload sequence the manager never violates the accuracy
    /// floor, never reports negative stalls, and its reported throughput
    /// always matches the selected entry on the selected fabric.
    #[test]
    fn decisions_are_always_consistent(
        workloads in proptest::collection::vec(0.0f64..2_000.0, 1..40),
        dt in 0.05f64..5.0,
    ) {
        let lib = library();
        let floor = lib.base_accuracy() - 10.0;
        let mut manager = RuntimeManager::new(lib, RuntimeConfig::default());
        let mut t = 0.0;
        for fps in workloads {
            let d = manager.decide(t, fps);
            prop_assert!(d.accuracy >= floor - 1e-9);
            prop_assert!(d.stall_s >= 0.0);
            let entry = &lib.entries()[d.entry_index];
            let expect = match d.accelerator {
                AcceleratorKind::FlexiblePruning => entry.flexible_fps,
                _ => entry.fixed.throughput_fps,
            };
            prop_assert!((d.throughput_fps - expect).abs() < 1e-9);
            prop_assert_eq!(manager.current(), Some((d.entry_index, d.accelerator)));
            t += dt;
        }
    }

    /// Whenever a model can serve the workload within the threshold, the
    /// selected model serves it too (the manager never under-provisions
    /// when provisioning is possible).
    #[test]
    fn never_underprovisions_when_possible(fps in 0.0f64..10_000.0) {
        let lib = library();
        let manager = RuntimeManager::new(lib, RuntimeConfig::default());
        for kind in [AcceleratorKind::FixedPruning, AcceleratorKind::FlexiblePruning] {
            let idx = manager.select_model(fps, kind);
            let chosen = &lib.entries()[idx];
            let feasible = lib
                .within_threshold(10.0)
                .iter()
                .any(|e| manager.throughput_of(e, kind) >= fps);
            if feasible {
                prop_assert!(
                    manager.throughput_of(chosen, kind) >= fps,
                    "workload {fps} was serveable but {} selected",
                    chosen.name
                );
            }
        }
    }

    /// Among entries that can serve the workload, the selection maximizes
    /// accuracy (the paper's tie rule).
    #[test]
    fn selects_most_accurate_matching_model(fps in 0.0f64..3_000.0) {
        let lib = library();
        let manager = RuntimeManager::new(lib, RuntimeConfig::default());
        let idx = manager.select_model(fps, AcceleratorKind::FixedPruning);
        let chosen = &lib.entries()[idx];
        for e in lib.within_threshold(10.0) {
            if e.fixed.throughput_fps >= fps && chosen.fixed.throughput_fps >= fps {
                prop_assert!(chosen.accuracy >= e.accuracy - 1e-9);
            }
        }
    }

    /// Repeating the same conditions is always a free no-op.
    #[test]
    fn idempotent_decisions(fps in 0.0f64..2_000.0, reps in 2usize..6) {
        let lib = library();
        let mut manager = RuntimeManager::new(lib, RuntimeConfig::default());
        let first = manager.decide(0.0, fps);
        for k in 1..reps {
            let d = manager.decide(k as f64 * 2.0, fps);
            prop_assert_eq!(d.entry_index, first.entry_index);
            prop_assert_eq!(d.switch, SwitchKind::None);
            prop_assert_eq!(d.stall_s, 0.0);
        }
    }
}
