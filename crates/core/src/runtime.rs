//! The Runtime Manager (run-time step, paper §IV-B2).
//!
//! On every workload or threshold change the manager selects
//!
//! 1. **a CNN model**: among library entries whose accuracy stays within the
//!    user threshold of the unpruned accuracy, the entry matching the
//!    incoming FPS at the best accuracy — or, when none matches, the entry
//!    with the highest throughput;
//! 2. **an accelerator type**: Fixed-Pruning only when model switches are
//!    infrequent (time since the last switch at least the switch-interval
//!    criterion, 10× the reconfiguration time in the paper's evaluation);
//!    Flexible-Pruning otherwise.
//!
//! Applying a decision may stall the accelerator: switching fixed
//! accelerators costs a full FPGA reconfiguration; switching models on the
//! flexible fabric only costs streaming the new weights in.

use crate::library::Library;
use adaflow_dataflow::AcceleratorKind;
use adaflow_hls::ReconfigurationModel;
use adaflow_telemetry::{EventKind, SinkHandle};
use serde::{Deserialize, Serialize};

/// Default weight-bus bandwidth for flexible model switches (DMA over the
/// PS-PL AXI HP port), bytes per second.
pub const WEIGHT_BUS_BYTES_PER_SECOND: f64 = 1.2e9;

/// Runtime Manager configuration (the paper's user inputs).
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeConfig {
    /// Maximum tolerated accuracy loss versus the unpruned model, in
    /// percentage points (the paper evaluates with 10).
    pub accuracy_threshold_points: f64,
    /// Fixed-Pruning is only selected when the time since the last model
    /// switch is at least this multiple of the reconfiguration time (the
    /// paper sets 10×).
    pub switch_interval_multiple: f64,
    /// FPGA reconfiguration timing model.
    pub reconfig: ReconfigurationModel,
    /// Weight-bus bandwidth used for flexible model switches.
    pub weight_bus_bytes_per_second: f64,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            accuracy_threshold_points: 10.0,
            switch_interval_multiple: 10.0,
            reconfig: ReconfigurationModel::default(),
            weight_bus_bytes_per_second: WEIGHT_BUS_BYTES_PER_SECOND,
        }
    }
}

/// Observed serving pressure, the request-level counterpart of the paper's
/// aggregate incoming-FPS estimate.
///
/// The oracle drive path hands [`RuntimeManager::decide`] the workload's
/// nominal rate directly; a real serving layer only observes *arrivals* and
/// *queueing*. The pressure signal folds both into one demand figure: the
/// EWMA of the arrival rate plus the service rate needed to drain the
/// current backlog within the drain-target horizon (`μ ≥ λ + Q/T` keeps the
/// queue shrinking toward empty within `T` seconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PressureSignal {
    /// Smoothed arrival rate estimate, requests per second.
    pub arrival_fps_ewma: f64,
    /// Current admission-queue occupancy, requests.
    pub queue_depth: f64,
    /// Horizon within which the backlog should drain, seconds.
    pub drain_target_s: f64,
}

impl PressureSignal {
    /// A nominal-load signal: a bare rate estimate with an empty queue, so
    /// `demand_fps()` equals `rate_fps` exactly. This is how the oracle
    /// drive path ([`RuntimeManager::decide`]) enters the pressure path —
    /// an incoming-FPS estimate *is* a pressure signal with no backlog.
    #[must_use]
    pub fn nominal(rate_fps: f64) -> Self {
        Self {
            arrival_fps_ewma: rate_fps,
            queue_depth: 0.0,
            drain_target_s: 1.0,
        }
    }

    /// The service rate this pressure level demands: arrivals plus the
    /// backlog spread over the drain horizon.
    #[must_use]
    pub fn demand_fps(&self) -> f64 {
        (self.arrival_fps_ewma + self.queue_depth / self.drain_target_s.max(1e-9)).max(0.0)
    }
}

/// What a decision physically did to the FPGA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SwitchKind {
    /// Nothing changed.
    None,
    /// New weights streamed into the flexible fabric (fast model switch).
    FlexibleModelSwitch,
    /// A full FPGA reconfiguration (fixed-accelerator switch or fabric
    /// change).
    Reconfiguration,
}

impl SwitchKind {
    /// Stable telemetry label for this switch kind.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SwitchKind::None => "none",
            SwitchKind::FlexibleModelSwitch => "flexible-switch",
            SwitchKind::Reconfiguration => "reconfiguration",
        }
    }
}

/// The outcome of one Runtime Manager invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Decision {
    /// Index of the selected library entry.
    pub entry_index: usize,
    /// Name of the selected model.
    pub model_name: String,
    /// Accelerator type now loaded.
    pub accelerator: AcceleratorKind,
    /// What changed on the fabric.
    pub switch: SwitchKind,
    /// Seconds the accelerator is unavailable while applying the decision.
    pub stall_s: f64,
    /// Serving throughput after the decision.
    pub throughput_fps: f64,
    /// Accuracy of the model now serving, in percent.
    pub accuracy: f64,
}

/// The Runtime Manager state machine.
#[derive(Debug, Clone)]
pub struct RuntimeManager<'l> {
    library: &'l Library,
    config: RuntimeConfig,
    current: Option<(usize, AcceleratorKind)>,
    last_model_switch: Option<f64>,
    /// Exponentially-weighted estimate of the inter-switch interval — the
    /// "intervals at which models need to be switched" of §IV-B2.
    switch_interval_ewma: Option<f64>,
    /// Telemetry sink; every applied decision is emitted as a
    /// [`EventKind::DecisionMade`] stamped with the decision's `now_s`.
    sink: SinkHandle,
}

impl<'l> RuntimeManager<'l> {
    /// Creates a manager over a generated library.
    #[must_use]
    pub fn new(library: &'l Library, config: RuntimeConfig) -> Self {
        Self {
            library,
            config,
            current: None,
            last_model_switch: None,
            switch_interval_ewma: None,
            sink: SinkHandle::default(),
        }
    }

    /// Attaches a telemetry sink; each call to [`RuntimeManager::decide`]
    /// then emits a [`EventKind::DecisionMade`] event with the applied
    /// decision and its stall accounting.
    #[must_use]
    pub fn with_sink(mut self, sink: SinkHandle) -> Self {
        self.sink = sink;
        self
    }

    /// The library being managed.
    #[must_use]
    pub fn library(&self) -> &Library {
        self.library
    }

    /// Currently loaded `(entry index, accelerator kind)`, if any.
    #[must_use]
    pub fn current(&self) -> Option<(usize, AcceleratorKind)> {
        self.current
    }

    /// Updates the accuracy threshold (a user-driven event in the paper;
    /// call [`RuntimeManager::decide`] afterwards to re-select).
    pub fn set_accuracy_threshold(&mut self, points: f64) {
        self.config.accuracy_threshold_points = points;
    }

    /// The switch-interval criterion in seconds: `multiple ×` the
    /// reconfiguration time of the baseline bitstream.
    #[must_use]
    pub fn switch_criterion_s(&self) -> f64 {
        self.config.switch_interval_multiple
            * self
                .config
                .reconfig
                .reconfiguration_time(&self.library.baseline.bitstream)
                .as_secs_f64()
    }

    /// Pure model selection (paper §IV-B2): among entries within the
    /// accuracy threshold, those whose throughput on `kind` meets
    /// `incoming_fps`; of these the most accurate. When none can match the
    /// workload, the fastest in-threshold entry.
    #[must_use]
    pub fn select_model(&self, incoming_fps: f64, kind: AcceleratorKind) -> usize {
        let threshold = self.config.accuracy_threshold_points;
        let floor = self.library.base_accuracy() - threshold;
        let candidates: Vec<(usize, &crate::library::ModelEntry)> = self
            .library
            .entries()
            .iter()
            .enumerate()
            .filter(|(_, e)| e.accuracy >= floor)
            .collect();
        debug_assert!(!candidates.is_empty(), "unpruned entry always qualifies");

        let fps_of = |e: &crate::library::ModelEntry| self.throughput_of(e, kind);
        let matching = candidates
            .iter()
            .filter(|(_, e)| fps_of(e) >= incoming_fps)
            // Most accurate among matching; accuracy ties (plateaus from the
            // divisibility constraints) break toward the *less pruned* model.
            .max_by(|(ia, a), (ib, b)| {
                a.accuracy
                    .partial_cmp(&b.accuracy)
                    .expect("accuracies are finite")
                    .then(ib.cmp(ia))
            });
        if let Some(&(idx, _)) = matching {
            return idx;
        }
        // No entry can serve the workload: take the fastest; throughput
        // ties (staircase plateaus) break toward the more accurate model so
        // the manager never trades accuracy for nothing.
        candidates
            .iter()
            .max_by(|(_, a), (_, b)| {
                fps_of(a)
                    .partial_cmp(&fps_of(b))
                    .expect("throughputs are finite")
                    .then(
                        a.accuracy
                            .partial_cmp(&b.accuracy)
                            .expect("accuracies are finite"),
                    )
            })
            .map(|&(idx, _)| idx)
            .expect("candidates nonempty")
    }

    /// Throughput of `entry` on an accelerator kind.
    #[must_use]
    pub fn throughput_of(&self, entry: &crate::library::ModelEntry, kind: AcceleratorKind) -> f64 {
        match kind {
            AcceleratorKind::FlexiblePruning => entry.flexible_fps,
            _ => entry.fixed.throughput_fps,
        }
    }

    /// Reacts to a workload level observed at `now_s`, applying and
    /// returning the decision.
    ///
    /// This is a thin front over [`RuntimeManager::decide_from_pressure`]:
    /// the rate estimate is wrapped in a nominal-load
    /// [`PressureSignal`] (empty queue), so both entry points share one
    /// decision body and cannot drift apart.
    ///
    /// The manager is meant to be invoked on *changes* (new incoming-FPS
    /// estimate from the performance monitors, or a threshold update);
    /// invoking it repeatedly with the same conditions is a no-op decision.
    pub fn decide(&mut self, now_s: f64, incoming_fps: f64) -> Decision {
        self.decide_from_pressure(now_s, &PressureSignal::nominal(incoming_fps))
    }

    /// Reacts to *observed* queue pressure instead of an oracle workload
    /// level. The single decision body: the signal's demanded service rate
    /// (`λ + Q/T`) drives model selection, the switch cadence estimate
    /// drives the accelerator-type rule. This is the request-level serving
    /// layer's input path (the paper's manager reacts to an aggregate FPS
    /// estimate; a per-request server reacts to what it can actually
    /// measure).
    pub fn decide_from_pressure(&mut self, now_s: f64, signal: &PressureSignal) -> Decision {
        let incoming_fps = signal.demand_fps();
        // Accelerator-type rule: Fixed only when models need to be switched
        // at intervals above the criterion (§IV-B2). The switching cadence
        // is estimated by blending the time since the last switch with the
        // EWMA of past inter-switch intervals, and leaving the flexible
        // fabric requires twice the criterion (hysteresis): one quiet gap
        // inside a turbulent phase must not bounce the fabric back to Fixed,
        // since every bounce costs two reconfigurations.
        let cadence = match (self.last_model_switch, self.switch_interval_ewma) {
            (None, _) => f64::INFINITY,
            (Some(t), None) => now_s - t,
            (Some(t), Some(ewma)) => 0.5 * (now_s - t) + 0.5 * ewma,
        };
        let on_flexible = matches!(self.current, Some((_, AcceleratorKind::FlexiblePruning)));
        let hysteresis = if on_flexible { 2.0 } else { 1.0 };
        let stable = cadence >= hysteresis * self.switch_criterion_s();
        let prospective_kind = if stable {
            AcceleratorKind::FixedPruning
        } else {
            AcceleratorKind::FlexiblePruning
        };

        let idx = self.select_model(incoming_fps, prospective_kind);
        // The fabric is only worth changing when the model itself changes:
        // re-loading a different fabric for the same model would spend a
        // reconfiguration without buying anything.
        let kind = match self.current {
            Some((cur_idx, cur_kind)) if cur_idx == idx => cur_kind,
            _ => prospective_kind,
        };
        let entry = &self.library.entries()[idx];

        let (switch, stall_s) = match self.current {
            None => {
                // Initial load: one reconfiguration to bring the fabric up.
                let bitstream = match kind {
                    AcceleratorKind::FlexiblePruning => &self.library.flexible.bitstream,
                    _ => &entry.fixed.bitstream,
                };
                (
                    SwitchKind::Reconfiguration,
                    self.config
                        .reconfig
                        .reconfiguration_time(bitstream)
                        .as_secs_f64(),
                )
            }
            Some((cur_idx, cur_kind)) if cur_idx == idx && cur_kind == kind => {
                (SwitchKind::None, 0.0)
            }
            Some((cur_idx, cur_kind)) => {
                if kind == AcceleratorKind::FlexiblePruning
                    && cur_kind == AcceleratorKind::FlexiblePruning
                {
                    // Fast model switch: stream the new weights in.
                    let _ = cur_idx;
                    let bytes = entry.weight_bits as f64 / 8.0;
                    (
                        SwitchKind::FlexibleModelSwitch,
                        bytes / self.config.weight_bus_bytes_per_second,
                    )
                } else {
                    // Any fabric change or fixed-accelerator switch is a
                    // full reconfiguration.
                    let bitstream = match kind {
                        AcceleratorKind::FlexiblePruning => &self.library.flexible.bitstream,
                        _ => &entry.fixed.bitstream,
                    };
                    (
                        SwitchKind::Reconfiguration,
                        self.config
                            .reconfig
                            .reconfiguration_time(bitstream)
                            .as_secs_f64(),
                    )
                }
            }
        };

        // The initial load is not a model *switch*: cadence tracking starts
        // with the first actual change.
        let model_changed = matches!(self.current, Some((cur_idx, _)) if cur_idx != idx);
        if model_changed {
            if let Some(last) = self.last_model_switch {
                let interval = now_s - last;
                self.switch_interval_ewma = Some(match self.switch_interval_ewma {
                    Some(ewma) => 0.5 * interval + 0.5 * ewma,
                    None => interval,
                });
            }
            self.last_model_switch = Some(now_s);
        }
        self.current = Some((idx, kind));

        let decision = Decision {
            entry_index: idx,
            model_name: entry.name.clone(),
            accelerator: kind,
            switch,
            stall_s,
            throughput_fps: self.throughput_of(entry, kind),
            accuracy: entry.accuracy,
        };
        if self.sink.enabled() {
            self.sink.emit(
                now_s,
                EventKind::DecisionMade {
                    model: decision.model_name.clone(),
                    accelerator: decision.accelerator.short_name().to_string(),
                    switch: decision.switch.label().to_string(),
                    stall_s: decision.stall_s,
                    incoming_fps,
                },
            );
        }
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::LibraryGenerator;
    use adaflow_model::prelude::*;
    use adaflow_nn::DatasetKind;

    fn library() -> Library {
        LibraryGenerator::default_edge_setup()
            .generate(
                &topology::cnv_w2a2_cifar10().expect("builds"),
                DatasetKind::Cifar10,
            )
            .expect("generates")
    }

    #[test]
    fn low_workload_selects_most_accurate_model() {
        let lib = library();
        let manager = RuntimeManager::new(&lib, RuntimeConfig::default());
        // Workload far below even the unpruned throughput.
        let idx = manager.select_model(50.0, AcceleratorKind::FixedPruning);
        assert_eq!(idx, 0, "unpruned model matches and has the best accuracy");
    }

    #[test]
    fn high_workload_selects_faster_model_within_threshold() {
        let lib = library();
        let manager = RuntimeManager::new(&lib, RuntimeConfig::default());
        let base_fps = lib.unpruned().fixed.throughput_fps;
        let idx = manager.select_model(base_fps * 1.3, AcceleratorKind::FixedPruning);
        let chosen = &lib.entries()[idx];
        assert!(chosen.fixed.throughput_fps >= base_fps * 1.3);
        assert!(chosen.accuracy >= lib.base_accuracy() - 10.0);
        assert!(idx > 0);
    }

    #[test]
    fn impossible_workload_selects_fastest_in_threshold() {
        let lib = library();
        let manager = RuntimeManager::new(&lib, RuntimeConfig::default());
        let idx = manager.select_model(1e9, AcceleratorKind::FixedPruning);
        let chosen = &lib.entries()[idx];
        // Never violates the accuracy floor even under impossible load.
        assert!(chosen.accuracy >= lib.base_accuracy() - 10.0);
        // And is the fastest entry that respects it.
        for e in lib.within_threshold(10.0) {
            assert!(chosen.fixed.throughput_fps >= e.fixed.throughput_fps);
        }
    }

    #[test]
    fn first_decision_is_fixed_with_one_reconfiguration() {
        let lib = library();
        let mut manager = RuntimeManager::new(&lib, RuntimeConfig::default());
        let d = manager.decide(0.0, 600.0);
        assert_eq!(d.accelerator, AcceleratorKind::FixedPruning);
        assert_eq!(d.switch, SwitchKind::Reconfiguration);
        assert!(d.stall_s > 0.1);
    }

    #[test]
    fn rapid_switches_move_to_flexible() {
        let lib = library();
        let mut manager = RuntimeManager::new(&lib, RuntimeConfig::default());
        let base_fps = lib.unpruned().fixed.throughput_fps;
        manager.decide(0.0, 100.0);
        // First model switch: no cadence history yet → fixed, reconfigured.
        let d = manager.decide(0.5, base_fps * 1.4);
        assert_eq!(d.accelerator, AcceleratorKind::FixedPruning);
        assert_eq!(d.switch, SwitchKind::Reconfiguration);
        // Second rapid switch: the observed cadence (0.5 s) is far below the
        // criterion (10 x ~145 ms ≈ 1.45 s) → flexible fabric loaded once...
        let d2 = manager.decide(1.0, 100.0);
        assert_eq!(d2.accelerator, AcceleratorKind::FlexiblePruning);
        assert_eq!(
            d2.switch,
            SwitchKind::Reconfiguration,
            "fabric change reconfigures once"
        );
        // ...then fast model switches with sub-millisecond stalls.
        let d3 = manager.decide(1.5, base_fps * 1.4);
        assert_eq!(d3.accelerator, AcceleratorKind::FlexiblePruning);
        assert_eq!(d3.switch, SwitchKind::FlexibleModelSwitch);
        assert!(
            d3.stall_s < 0.005,
            "flexible switch stalled {}s",
            d3.stall_s
        );
    }

    #[test]
    fn stable_phases_return_to_fixed() {
        let lib = library();
        let mut manager = RuntimeManager::new(&lib, RuntimeConfig::default());
        let base_fps = lib.unpruned().fixed.throughput_fps;
        manager.decide(0.0, 100.0);
        manager.decide(0.5, base_fps * 1.4); // flexible
                                             // Long quiet period, then a change: back to fixed (the quiet gap
                                             // must dominate the blended cadence estimate).
        let criterion = manager.switch_criterion_s();
        let d = manager.decide(0.5 + 3.0 * criterion, 100.0);
        assert_eq!(d.accelerator, AcceleratorKind::FixedPruning);
    }

    #[test]
    fn same_conditions_are_a_no_op() {
        let lib = library();
        let mut manager = RuntimeManager::new(&lib, RuntimeConfig::default());
        manager.decide(0.0, 600.0);
        let d = manager.decide(10.0, 600.0);
        assert_eq!(d.switch, SwitchKind::None);
        assert_eq!(d.stall_s, 0.0);
    }

    #[test]
    fn threshold_change_can_unlock_faster_models() {
        let lib = library();
        let mut manager = RuntimeManager::new(
            &lib,
            RuntimeConfig {
                accuracy_threshold_points: 2.0,
                ..RuntimeConfig::default()
            },
        );
        let tight = manager.select_model(1e9, AcceleratorKind::FixedPruning);
        manager.set_accuracy_threshold(15.0);
        let loose = manager.select_model(1e9, AcceleratorKind::FixedPruning);
        let entries = lib.entries();
        assert!(entries[loose].fixed.throughput_fps > entries[tight].fixed.throughput_fps);
    }

    #[test]
    fn criterion_is_ten_reconfigurations_by_default() {
        let lib = library();
        let manager = RuntimeManager::new(&lib, RuntimeConfig::default());
        let c = manager.switch_criterion_s();
        assert!((1.2..=1.7).contains(&c), "criterion {c}s");
    }

    #[test]
    fn pressure_demand_adds_backlog_drain_rate() {
        let idle = PressureSignal {
            arrival_fps_ewma: 600.0,
            queue_depth: 0.0,
            drain_target_s: 0.5,
        };
        assert!((idle.demand_fps() - 600.0).abs() < 1e-12);
        let loaded = PressureSignal {
            arrival_fps_ewma: 600.0,
            queue_depth: 100.0,
            drain_target_s: 0.5,
        };
        // 100 queued requests over a 0.5 s horizon demand 200 extra FPS.
        assert!((loaded.demand_fps() - 800.0).abs() < 1e-12);
    }

    #[test]
    fn pressure_path_selects_faster_model_than_arrivals_alone() {
        let lib = library();
        let base_fps = lib.unpruned().fixed.throughput_fps;
        let mut by_rate = RuntimeManager::new(&lib, RuntimeConfig::default());
        let mut by_pressure = RuntimeManager::new(&lib, RuntimeConfig::default());
        // Arrivals alone fit the unpruned model; a deep backlog must push
        // the pressure-driven manager to a faster entry.
        let arrivals = base_fps * 0.9;
        let relaxed = by_rate.decide(0.0, arrivals);
        let pressed = by_pressure.decide_from_pressure(
            0.0,
            &PressureSignal {
                arrival_fps_ewma: arrivals,
                queue_depth: base_fps, // one full second of backlog
                drain_target_s: 0.5,
            },
        );
        assert_eq!(relaxed.entry_index, 0, "arrivals alone fit unpruned");
        assert!(
            pressed.throughput_fps > relaxed.throughput_fps,
            "backlog must demand a faster model"
        );
    }

    #[test]
    fn decide_is_equivalent_to_nominal_pressure() {
        // Regression for the decide / decide_from_pressure drift: the
        // oracle path must be *exactly* the pressure path under a
        // nominal-load signal, decision for decision, across a workload
        // trajectory that exercises switches, hysteresis and no-ops.
        let lib = library();
        let mut by_rate = RuntimeManager::new(&lib, RuntimeConfig::default());
        let mut by_signal = RuntimeManager::new(&lib, RuntimeConfig::default());
        let base_fps = lib.unpruned().fixed.throughput_fps;
        let trajectory = [
            (0.0, 100.0),
            (0.5, base_fps * 1.4),
            (1.0, 100.0),
            (1.5, base_fps * 1.4),
            (4.0, 100.0),
            (10.0, 100.0),
            (10.5, 1e9),
            (20.0, 50.0),
        ];
        for (now_s, fps) in trajectory {
            let a = by_rate.decide(now_s, fps);
            let b = by_signal.decide_from_pressure(now_s, &PressureSignal::nominal(fps));
            assert_eq!(a, b, "paths diverged at t={now_s}, fps={fps}");
        }
        assert_eq!(by_rate.current(), by_signal.current());
    }

    #[test]
    fn nominal_signal_demand_is_the_rate_itself() {
        for fps in [0.0, 1.0, 433.7, 1e9] {
            assert_eq!(PressureSignal::nominal(fps).demand_fps(), fps);
        }
    }

    #[test]
    fn accuracy_never_below_floor_across_random_workloads() {
        let lib = library();
        let mut manager = RuntimeManager::new(&lib, RuntimeConfig::default());
        let floor = lib.base_accuracy() - 10.0;
        let mut t = 0.0;
        for step in 0..200u32 {
            // Deterministic pseudo-random workload levels in 0..1200 FPS.
            let fps = f64::from(step.wrapping_mul(2654435761) % 1200);
            let d = manager.decide(t, fps);
            assert!(d.accuracy >= floor - 1e-9, "violated floor at step {step}");
            t += 0.5;
        }
    }
}
