//! # adaflow — adaptive dataflow CNN acceleration framework
//!
//! The primary contribution of the reproduced paper: a hybrid, two-step
//! framework for adaptive CNN inference on FPGA dataflow accelerators.
//!
//! 1. **Design time** — the [`library::LibraryGenerator`] sweeps the
//!    dataflow-aware pruner over rates 0–85 % (5 % steps, 18 models per
//!    initial CNN), retrains/scores every pruned model, synthesizes one
//!    Fixed-Pruning accelerator per model plus one Flexible-Pruning
//!    accelerator per initial CNN, and assembles the result into a
//!    [`library::Library`] table of (model, accuracy, throughput, resources,
//!    power) rows.
//! 2. **Run time** — the [`runtime::RuntimeManager`] reacts to workload and
//!    threshold changes: among the models above the accuracy floor it picks
//!    the one matching the incoming FPS at the best accuracy (or the fastest
//!    when none match), and selects Fixed- vs Flexible-Pruning accelerators
//!    by the switch-interval criterion (Fixed only when switches are rarer
//!    than the configured interval, defaulting to 10× the reconfiguration
//!    time).
//!
//! ## Quickstart
//!
//! ```
//! use adaflow::prelude::*;
//! use adaflow_model::prelude::*;
//! use adaflow_nn::DatasetKind;
//!
//! // Design time: build the library for CNVW2A2 on CIFAR-10.
//! let library = LibraryGenerator::default_edge_setup()
//!     .generate(&topology::cnv_w2a2_cifar10()?, DatasetKind::Cifar10)?;
//! assert_eq!(library.entries().len(), 18);
//!
//! // Run time: manage inference serving against a workload level.
//! let mut manager = RuntimeManager::new(&library, RuntimeConfig::default());
//! let decision = manager.decide(0.0, 600.0);
//! assert!(decision.throughput_fps >= 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod explore;
pub mod library;
pub mod runtime;
pub mod suite;

pub use error::AdaFlowError;
pub use explore::{ExplorationGoal, ExplorationResult, FoldingExplorer};
pub use library::{Library, LibraryGenerator, ModelEntry};
pub use runtime::{Decision, PressureSignal, RuntimeConfig, RuntimeManager, SwitchKind};
pub use suite::LibrarySuite;

/// Convenience re-exports for downstream crates and examples.
pub mod prelude {
    pub use crate::error::AdaFlowError;
    pub use crate::explore::{ExplorationGoal, ExplorationResult, FoldingExplorer};
    pub use crate::library::{Library, LibraryGenerator, ModelEntry};
    pub use crate::runtime::{Decision, PressureSignal, RuntimeConfig, RuntimeManager, SwitchKind};
    pub use crate::suite::LibrarySuite;
    pub use adaflow_dataflow::AcceleratorKind;
}
