//! Multi-application library suites.
//!
//! The paper's Library Generator takes *initial CNN models* (plural) as user
//! input and builds one library per model/dataset pair — the evaluation uses
//! four (CNVW2A2/CNVW1A2 × CIFAR-10/GTSRB). A [`LibrarySuite`] holds those
//! libraries keyed by application name, so an Edge deployment serving
//! several applications can instantiate a Runtime Manager per application
//! from one designed artifact.

use crate::error::AdaFlowError;
use crate::library::{Library, LibraryGenerator};
use crate::runtime::{RuntimeConfig, RuntimeManager};
use adaflow_model::CnnGraph;
use adaflow_nn::DatasetKind;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A set of generated libraries, one per application.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LibrarySuite {
    libraries: BTreeMap<String, Library>,
}

impl LibrarySuite {
    /// Creates an empty suite.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Generates a suite from `(application, initial CNN, dataset)` triples
    /// with one generator configuration.
    ///
    /// # Errors
    ///
    /// Propagates the first library-generation failure; returns
    /// [`AdaFlowError::Library`] on duplicate application names.
    pub fn generate<I>(generator: &LibraryGenerator, applications: I) -> Result<Self, AdaFlowError>
    where
        I: IntoIterator<Item = (String, CnnGraph, DatasetKind)>,
    {
        let mut suite = Self::new();
        for (app, graph, dataset) in applications {
            let library = generator.generate(&graph, dataset)?;
            suite.insert(app, library)?;
        }
        Ok(suite)
    }

    /// Adds a library under an application name.
    ///
    /// # Errors
    ///
    /// Returns [`AdaFlowError::Library`] if the name is already taken.
    pub fn insert(&mut self, app: impl Into<String>, library: Library) -> Result<(), AdaFlowError> {
        let app = app.into();
        if self.libraries.contains_key(&app) {
            return Err(AdaFlowError::Library(format!(
                "application {app} already registered"
            )));
        }
        self.libraries.insert(app, library);
        Ok(())
    }

    /// The library of one application.
    #[must_use]
    pub fn library(&self, app: &str) -> Option<&Library> {
        self.libraries.get(app)
    }

    /// Registered application names, sorted.
    #[must_use]
    pub fn applications(&self) -> Vec<&str> {
        self.libraries.keys().map(String::as_str).collect()
    }

    /// Number of registered applications.
    #[must_use]
    pub fn len(&self) -> usize {
        self.libraries.len()
    }

    /// Whether the suite holds no libraries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.libraries.is_empty()
    }

    /// Iterates over `(application, library)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Library)> {
        self.libraries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Instantiates a Runtime Manager for one application.
    ///
    /// # Errors
    ///
    /// Returns [`AdaFlowError::Library`] for an unknown application.
    pub fn manager_for(
        &self,
        app: &str,
        config: RuntimeConfig,
    ) -> Result<RuntimeManager<'_>, AdaFlowError> {
        let library = self
            .library(app)
            .ok_or_else(|| AdaFlowError::Library(format!("unknown application {app}")))?;
        Ok(RuntimeManager::new(library, config))
    }

    /// Serializes the suite to JSON.
    ///
    /// # Errors
    ///
    /// Returns [`AdaFlowError::Export`] on serialization failure.
    pub fn to_json(&self) -> Result<String, AdaFlowError> {
        serde_json::to_string_pretty(self).map_err(|e| AdaFlowError::Export(e.to_string()))
    }

    /// Deserializes a suite from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`AdaFlowError::Export`] on malformed input.
    pub fn from_json(json: &str) -> Result<Self, AdaFlowError> {
        serde_json::from_str(json).map_err(|e| AdaFlowError::Export(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaflow_model::prelude::*;

    fn small_generator() -> LibraryGenerator {
        // Fewer rates keep the suite tests fast.
        LibraryGenerator {
            pruning_rates: vec![0.0, 0.25, 0.5],
            ..LibraryGenerator::default_edge_setup()
        }
    }

    fn two_app_suite() -> LibrarySuite {
        LibrarySuite::generate(
            &small_generator(),
            [
                (
                    "surveillance".to_string(),
                    topology::cnv_w2a2_cifar10().expect("builds"),
                    DatasetKind::Cifar10,
                ),
                (
                    "traffic-signs".to_string(),
                    topology::cnv_w2a2_gtsrb().expect("builds"),
                    DatasetKind::Gtsrb,
                ),
            ],
        )
        .expect("generates")
    }

    #[test]
    fn generates_one_library_per_application() {
        let suite = two_app_suite();
        assert_eq!(suite.len(), 2);
        assert_eq!(suite.applications(), vec!["surveillance", "traffic-signs"]);
        assert_eq!(
            suite.library("surveillance").expect("exists").dataset,
            DatasetKind::Cifar10
        );
        assert!(suite.library("nope").is_none());
    }

    #[test]
    fn duplicate_application_rejected() {
        let mut suite = two_app_suite();
        let lib = suite.library("surveillance").expect("exists").clone();
        assert!(matches!(
            suite.insert("surveillance", lib),
            Err(AdaFlowError::Library(_))
        ));
    }

    #[test]
    fn manager_per_application() {
        let suite = two_app_suite();
        let mut m = suite
            .manager_for("traffic-signs", RuntimeConfig::default())
            .expect("manager");
        let d = m.decide(0.0, 500.0);
        assert!(d.model_name.contains("gtsrb"));
        assert!(suite.manager_for("nope", RuntimeConfig::default()).is_err());
    }

    #[test]
    fn suite_json_round_trip() {
        let suite = two_app_suite();
        let json = suite.to_json().expect("export");
        let back = LibrarySuite::from_json(&json).expect("import");
        assert_eq!(suite, back);
    }

    #[test]
    fn empty_suite_behaves() {
        let suite = LibrarySuite::new();
        assert!(suite.is_empty());
        assert_eq!(suite.iter().count(), 0);
    }
}
