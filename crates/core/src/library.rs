//! The AdaFlow Library and its generator (design-time step).

use crate::error::AdaFlowError;
use adaflow_dataflow::{AcceleratorKind, DataflowAccelerator};
use adaflow_hls::{synthesize, FpgaDevice, SynthesizedAccelerator};
use adaflow_model::{CnnGraph, QuantSpec};
use adaflow_nn::{AccuracyModel, DatasetKind};
use adaflow_pruning::{retrain, DataflowAwarePruner, FinnConfig, RetrainPolicy};
use serde::{Deserialize, Serialize};

/// One row of the Library table: a pruned CNN model with its accuracy and
/// throughput profile and its Fixed-Pruning accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelEntry {
    /// Model name (`cnv-w2a2-cifar10-p25`).
    pub name: String,
    /// Requested pruning rate.
    pub requested_rate: f64,
    /// Achieved pruning rate after the divisibility constraints.
    pub achieved_rate: f64,
    /// TOP-1 accuracy in percent after retraining.
    pub accuracy: f64,
    /// Per-conv-layer channel counts — the runtime-controllable parameter
    /// vector shipped to the flexible accelerator on a model switch.
    pub conv_channels: Vec<usize>,
    /// MACs per inference.
    pub macs: u64,
    /// Total stored weight bits (drives the flexible model-switch time:
    /// new weights are streamed to the fabric over the weight bus).
    pub weight_bits: u64,
    /// The model's Fixed-Pruning accelerator (synthesized).
    pub fixed: SynthesizedAccelerator,
    /// Throughput when this model is loaded on the shared Flexible-Pruning
    /// accelerator.
    pub flexible_fps: f64,
    /// Activity factor of the flexible fabric under this model (for the
    /// power model).
    pub flexible_activity: f64,
}

/// The library generated at design time for one initial CNN / dataset pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Library {
    /// Name of the initial (unpruned) CNN.
    pub initial_model: String,
    /// Dataset the models were adapted to.
    pub dataset: DatasetKind,
    /// Quantization of the model family.
    pub quant: QuantSpec,
    /// Target device name.
    pub device: String,
    /// Entries sorted by requested pruning rate (first entry = unpruned).
    entries: Vec<ModelEntry>,
    /// The shared Flexible-Pruning accelerator (synthesized for the worst
    /// case, i.e. the unpruned model).
    pub flexible: SynthesizedAccelerator,
    /// The original FINN accelerator (baseline; identical model to entry 0
    /// but without any AdaFlow machinery).
    pub baseline: SynthesizedAccelerator,
}

impl Library {
    /// All entries, sorted by requested pruning rate.
    #[must_use]
    pub fn entries(&self) -> &[ModelEntry] {
        &self.entries
    }

    /// The unpruned entry.
    ///
    /// # Panics
    ///
    /// Never panics: generated libraries always contain the 0 % entry.
    #[must_use]
    pub fn unpruned(&self) -> &ModelEntry {
        &self.entries[0]
    }

    /// Baseline (unpruned) accuracy in percent.
    #[must_use]
    pub fn base_accuracy(&self) -> f64 {
        self.unpruned().accuracy
    }

    /// Entries whose accuracy stays within `threshold_points` of the
    /// unpruned accuracy — the candidate set of the Runtime Manager.
    #[must_use]
    pub fn within_threshold(&self, threshold_points: f64) -> Vec<&ModelEntry> {
        let floor = self.base_accuracy() - threshold_points;
        self.entries
            .iter()
            .filter(|e| e.accuracy >= floor)
            .collect()
    }

    /// Serializes the library table to JSON.
    ///
    /// # Errors
    ///
    /// Returns [`AdaFlowError::Export`] on serialization failure.
    pub fn to_json(&self) -> Result<String, AdaFlowError> {
        serde_json::to_string_pretty(self).map_err(|e| AdaFlowError::Export(e.to_string()))
    }

    /// Deserializes a library table from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`AdaFlowError::Export`] on malformed input.
    pub fn from_json(json: &str) -> Result<Self, AdaFlowError> {
        serde_json::from_str(json).map_err(|e| AdaFlowError::Export(e.to_string()))
    }
}

/// The design-time generator: prune sweep → retrain/score → synthesize.
#[derive(Debug, Clone)]
pub struct LibraryGenerator {
    /// Pruning rates to sweep.
    pub pruning_rates: Vec<f64>,
    /// Target device.
    pub device: FpgaDevice,
    /// Folding configuration; `None` derives the CNV reference / auto
    /// folding per graph.
    pub folding: Option<FinnConfig>,
}

impl LibraryGenerator {
    /// The paper's evaluation setup: rates 0–85 % in 5 % steps (18 models)
    /// on a ZCU104.
    #[must_use]
    pub fn default_edge_setup() -> Self {
        Self {
            pruning_rates: (0..18).map(|s| s as f64 * 0.05).collect(),
            device: FpgaDevice::zcu104(),
            folding: None,
        }
    }

    /// Generates the library for one initial CNN / dataset pair, scoring
    /// accuracy with the calibrated analytical model (see `adaflow-nn`).
    ///
    /// # Errors
    ///
    /// Propagates pruning, compilation and synthesis failures; returns
    /// [`AdaFlowError::Library`] if no pruning rates are configured.
    pub fn generate(
        &self,
        initial: &CnnGraph,
        dataset: DatasetKind,
    ) -> Result<Library, AdaFlowError> {
        let quant = initial
            .quant()
            .ok_or_else(|| AdaFlowError::Library("initial model has no MVTU layers".into()))?;
        let curve = AccuracyModel::calibrated(dataset, quant);
        self.generate_with_policy(initial, dataset, &RetrainPolicy::Analytical(curve))
    }

    /// Generates the library with an explicit retrain policy (real SGD
    /// retraining for laptop-scale models, analytical otherwise).
    ///
    /// # Errors
    ///
    /// See [`LibraryGenerator::generate`].
    pub fn generate_with_policy(
        &self,
        initial: &CnnGraph,
        dataset: DatasetKind,
        policy: &RetrainPolicy,
    ) -> Result<Library, AdaFlowError> {
        if self.pruning_rates.is_empty() {
            return Err(AdaFlowError::Library("no pruning rates configured".into()));
        }
        let quant = initial
            .quant()
            .ok_or_else(|| AdaFlowError::Library("initial model has no MVTU layers".into()))?;
        let folding = match &self.folding {
            Some(f) => f.clone(),
            None => FinnConfig::cnv_reference(initial)?,
        };
        let pruner = DataflowAwarePruner::new(folding.clone());

        // The shared flexible fabric: synthesized for the worst case.
        let flexible_accel =
            DataflowAccelerator::compile(initial, &folding, AcceleratorKind::FlexiblePruning)?;
        let flexible = synthesize(&flexible_accel, &self.device)?;

        // The original FINN baseline.
        let baseline_accel =
            DataflowAccelerator::compile(initial, &folding, AcceleratorKind::Finn)?;
        let baseline = synthesize(&baseline_accel, &self.device)?;

        let worst_macs = initial.total_macs();
        let mut entries = Vec::with_capacity(self.pruning_rates.len());
        let mut rates = self.pruning_rates.clone();
        rates.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
        for &rate in &rates {
            let pruned = pruner.prune(initial, rate)?;
            let achieved = pruned.achieved_rate();
            let outcome = retrain(pruned, policy)?;
            let model = outcome.model;

            let fixed_accel = DataflowAccelerator::compile(
                &model.graph,
                &folding,
                AcceleratorKind::FixedPruning,
            )?;
            let fixed = synthesize(&fixed_accel, &self.device)?;
            let flex_perf = flexible_accel.performance_for(&model.graph, &folding)?;
            let macs = model.graph.total_macs();

            entries.push(ModelEntry {
                name: model.graph.name().to_string(),
                requested_rate: rate,
                achieved_rate: achieved,
                accuracy: outcome.accuracy,
                conv_channels: model.conv_channels(),
                macs,
                weight_bits: model.graph.total_weight_bits(),
                fixed,
                flexible_fps: flex_perf.throughput_fps,
                flexible_activity: adaflow_hls::power::flexible_activity(worst_macs, macs),
            });
        }

        Ok(Library {
            initial_model: initial.name().to_string(),
            dataset,
            quant,
            device: self.device.name.clone(),
            entries,
            flexible,
            baseline,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaflow_model::prelude::*;

    fn cifar_library() -> Library {
        LibraryGenerator::default_edge_setup()
            .generate(
                &topology::cnv_w2a2_cifar10().expect("builds"),
                DatasetKind::Cifar10,
            )
            .expect("generates")
    }

    #[test]
    fn paper_setup_generates_18_models() {
        let lib = cifar_library();
        assert_eq!(lib.entries().len(), 18);
        assert_eq!(lib.unpruned().requested_rate, 0.0);
        assert_eq!(lib.quant, QuantSpec::w2a2());
    }

    #[test]
    fn accuracy_decreases_and_fps_increases_along_the_sweep() {
        let lib = cifar_library();
        let entries = lib.entries();
        for pair in entries.windows(2) {
            assert!(pair[1].accuracy <= pair[0].accuracy + 1e-9);
            assert!(pair[1].fixed.throughput_fps >= pair[0].fixed.throughput_fps - 1e-9);
        }
        // The ends of Fig. 1(a)'s trade-off.
        let first = &entries[0];
        let last = entries.last().expect("nonempty");
        assert!(last.fixed.throughput_fps > first.fixed.throughput_fps * 3.0);
        assert!(last.accuracy < first.accuracy - 20.0);
    }

    #[test]
    fn ten_point_threshold_selects_low_rates_only() {
        let lib = cifar_library();
        let candidates = lib.within_threshold(10.0);
        assert!(!candidates.is_empty());
        assert!(candidates
            .iter()
            .all(|e| e.accuracy >= lib.base_accuracy() - 10.0));
        // 25% pruning loses ~9.9 points, 30% more: the cut sits near there.
        let max_rate = candidates
            .iter()
            .map(|e| e.requested_rate)
            .fold(0.0f64, f64::max);
        assert!(
            (0.2..=0.3).contains(&max_rate),
            "threshold cut at {max_rate}"
        );
    }

    #[test]
    fn flexible_is_slightly_slower_than_fixed() {
        let lib = cifar_library();
        for e in lib.entries() {
            assert!(e.flexible_fps <= e.fixed.throughput_fps);
            let gap = 1.0 - e.flexible_fps / e.fixed.throughput_fps;
            assert!(gap <= 0.037 + 1e-9, "flexible gap {gap} at {}", e.name);
        }
    }

    #[test]
    fn flexible_fabric_bigger_baseline_smaller() {
        let lib = cifar_library();
        assert!(lib.flexible.resources.lut > lib.baseline.resources.lut);
        for e in lib.entries() {
            assert!(e.fixed.resources.lut <= lib.baseline.resources.lut);
        }
    }

    #[test]
    fn json_round_trip() {
        let lib = cifar_library();
        let json = lib.to_json().expect("export");
        let back = Library::from_json(&json).expect("import");
        assert_eq!(lib, back);
    }

    #[test]
    fn gtsrb_library_generates() {
        let lib = LibraryGenerator::default_edge_setup()
            .generate(
                &topology::cnv_w2a2_gtsrb().expect("builds"),
                DatasetKind::Gtsrb,
            )
            .expect("generates");
        assert_eq!(lib.dataset, DatasetKind::Gtsrb);
        assert!(lib.base_accuracy() > 90.0);
    }

    #[test]
    fn empty_rates_rejected() {
        let mut generator = LibraryGenerator::default_edge_setup();
        generator.pruning_rates.clear();
        let err = generator
            .generate(
                &topology::cnv_w2a2_cifar10().expect("builds"),
                DatasetKind::Cifar10,
            )
            .unwrap_err();
        assert!(matches!(err, AdaFlowError::Library(_)));
    }

    #[test]
    fn threshold_edge_values() {
        let lib = cifar_library();
        // Zero budget admits exactly the unpruned entry (and any exact ties).
        let none = lib.within_threshold(0.0);
        assert!(none.iter().all(|e| e.accuracy >= lib.base_accuracy()));
        assert!(!none.is_empty());
        // An unbounded budget admits everything.
        assert_eq!(lib.within_threshold(1000.0).len(), lib.entries().len());
        // Negative budgets admit nothing below base accuracy.
        assert!(lib
            .within_threshold(-5.0)
            .iter()
            .all(|e| e.accuracy >= lib.base_accuracy() + 5.0));
    }

    #[test]
    fn entries_are_sorted_by_requested_rate() {
        let lib = cifar_library();
        assert!(lib
            .entries()
            .windows(2)
            .all(|pair| pair[0].requested_rate <= pair[1].requested_rate));
    }

    #[test]
    fn flexible_activity_tracks_pruning() {
        let lib = cifar_library();
        let entries = lib.entries();
        assert!((entries[0].flexible_activity - 1.0).abs() < 1e-9);
        for pair in entries.windows(2) {
            assert!(pair[1].flexible_activity <= pair[0].flexible_activity + 1e-12);
        }
    }
}
