//! Framework-level errors.

use thiserror::Error;

/// Errors surfaced by library generation or runtime management.
#[derive(Debug, Clone, PartialEq, Error)]
#[non_exhaustive]
pub enum AdaFlowError {
    /// Graph-level failure.
    #[error(transparent)]
    Model(#[from] adaflow_model::ModelError),

    /// Inference/training failure.
    #[error(transparent)]
    Nn(#[from] adaflow_nn::NnError),

    /// Pruning failure.
    #[error(transparent)]
    Prune(#[from] adaflow_pruning::PruneError),

    /// Dataflow compilation failure.
    #[error(transparent)]
    Dataflow(#[from] adaflow_dataflow::DataflowError),

    /// Synthesis failure.
    #[error(transparent)]
    Hls(#[from] adaflow_hls::HlsError),

    /// The library cannot serve the request (e.g. empty library, no model
    /// above the accuracy floor).
    #[error("library error: {0}")]
    Library(String),

    /// Serialization failure when exporting the library table.
    #[error("export error: {0}")]
    Export(String),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AdaFlowError>();
    }

    #[test]
    fn wraps_model_errors() {
        let err: AdaFlowError = adaflow_model::ModelError::UnknownLayer(1).into();
        assert_eq!(err.to_string(), "unknown layer id 1");
    }
}
