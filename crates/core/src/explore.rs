//! Folding design-space exploration.
//!
//! The FINN configuration file (PE/SIMD per MVTU) is a user input in the
//! paper; in practice it is itself the product of a design-space search.
//! [`FoldingExplorer`] automates that step: starting from minimal folding
//! (PE = SIMD = 1 everywhere), it greedily parallelizes the current
//! bottleneck MVTU — the move with the best throughput return — until the
//! throughput target is met or the device budget is exhausted, exactly the
//! balance-the-pipeline heuristic FINN's folding guides describe.
//!
//! The result is a [`FinnConfig`] ready for the Library Generator, plus the
//! explored accelerator's synthesis report.

use crate::error::AdaFlowError;
use adaflow_dataflow::{AcceleratorKind, DataflowAccelerator};
use adaflow_hls::{estimate_accelerator, FpgaDevice, ResourceEstimate};
use adaflow_model::{CnnGraph, Layer, LayerId};
use adaflow_pruning::{FinnConfig, Folding};
use serde::{Deserialize, Serialize};

/// Exploration goal and budget.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplorationGoal {
    /// Stop once steady-state throughput reaches this (frames per second).
    pub target_fps: f64,
    /// Resource budget; folding moves that would exceed this fraction of
    /// the device are rejected.
    pub device: FpgaDevice,
    /// Maximum fraction of each device resource to spend (e.g. `0.7`).
    pub utilization_cap: f64,
}

impl ExplorationGoal {
    /// The paper-flavoured default: serve the nominal 600 FPS Edge workload
    /// on a ZCU104 using at most 70 % of the fabric.
    #[must_use]
    pub fn edge_default() -> Self {
        Self {
            target_fps: 600.0,
            device: FpgaDevice::zcu104(),
            utilization_cap: 0.7,
        }
    }

    fn fits(&self, res: &ResourceEstimate) -> bool {
        let cap = |used: u64, avail: u64| used as f64 <= avail as f64 * self.utilization_cap;
        cap(res.lut, self.device.lut)
            && cap(res.ff, self.device.ff)
            && cap(res.bram36, self.device.bram36)
            && cap(res.dsp, self.device.dsp.max(1))
    }
}

/// Result of a folding exploration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExplorationResult {
    /// The chosen folding.
    pub folding: FinnConfig,
    /// Steady-state throughput of the explored accelerator.
    pub throughput_fps: f64,
    /// Resources of the explored accelerator.
    pub resources: ResourceEstimate,
    /// Whether the throughput target was reached within budget.
    pub target_met: bool,
    /// Number of folding moves taken.
    pub moves: usize,
}

/// Greedy bottleneck-driven folding search.
#[derive(Debug, Clone)]
pub struct FoldingExplorer {
    goal: ExplorationGoal,
}

impl FoldingExplorer {
    /// Creates an explorer for a goal.
    #[must_use]
    pub fn new(goal: ExplorationGoal) -> Self {
        Self { goal }
    }

    /// Explores a folding for `graph`.
    ///
    /// # Errors
    ///
    /// Propagates compilation/estimation failures; returns
    /// [`AdaFlowError::Library`] when even minimal folding exceeds budget.
    pub fn explore(&self, graph: &CnnGraph) -> Result<ExplorationResult, AdaFlowError> {
        // Per-MVTU capability: (layer id, max PE, max SIMD).
        let mvtus: Vec<(LayerId, usize, usize)> = graph
            .iter()
            .filter_map(|n| match &n.layer {
                Layer::Conv2d(c) => Some((n.id, c.out_channels, c.in_channels)),
                Layer::Dense(d) => Some((n.id, d.out_features, d.in_features)),
                _ => None,
            })
            .collect();
        // Start minimal.
        let mut folds: Vec<Folding> = mvtus.iter().map(|_| Folding::new(1, 1)).collect();

        let evaluate = |folds: &[Folding]| -> Result<(f64, ResourceEstimate), AdaFlowError> {
            let config = FinnConfig::new(graph, folds.to_vec())?;
            let accel = DataflowAccelerator::compile(graph, &config, AcceleratorKind::Finn)?;
            let res = estimate_accelerator(&accel)?;
            Ok((accel.throughput_fps(), res))
        };

        let (mut fps, mut res) = evaluate(&folds)?;
        if !self.goal.fits(&res) {
            return Err(AdaFlowError::Library(
                "minimal folding already exceeds the device budget".into(),
            ));
        }

        let mut moves = 0usize;
        // Bounded by the total log-space of folding factors.
        for _ in 0..256 {
            if fps >= self.goal.target_fps {
                break;
            }
            // Find the bottleneck MVTU and try to double its PE or SIMD
            // (whichever divides evenly and survives the budget).
            let config = FinnConfig::new(graph, folds.clone())?;
            let accel = DataflowAccelerator::compile(graph, &config, AcceleratorKind::Finn)?;
            let bottleneck = accel
                .modules()
                .iter()
                .max_by_key(|m| m.cycles_per_frame())
                .expect("accelerators have modules")
                .name
                .clone();
            // Map the bottleneck module back to its MVTU index.
            let Some(idx) = mvtus.iter().position(|(id, _, _)| {
                let name = &graph.nodes()[id.0].name;
                bottleneck.starts_with(name.as_str())
            }) else {
                break; // bottleneck is a pool/SWU stage: folding cannot help
            };

            let (_, max_pe, max_simd) = mvtus[idx];
            let mut improved = false;
            // SIMD first: widening the input lanes is BRAM-neutral, while
            // raising PE multiplies the weight-memory partition count.
            for grow_pe in [false, true] {
                let mut candidate = folds.clone();
                let f = &mut candidate[idx];
                let next = if grow_pe {
                    next_divisor(f.pe, max_pe)
                } else {
                    next_divisor(f.simd, max_simd)
                };
                let Some(next) = next else { continue };
                if grow_pe {
                    f.pe = next;
                } else {
                    f.simd = next;
                }
                let (new_fps, new_res) = evaluate(&candidate)?;
                if self.goal.fits(&new_res) && new_fps >= fps {
                    folds = candidate;
                    fps = new_fps;
                    res = new_res;
                    moves += 1;
                    improved = true;
                    break;
                }
            }
            if !improved {
                break; // bottleneck cannot be parallelized further
            }
        }

        Ok(ExplorationResult {
            folding: FinnConfig::new(graph, folds)?,
            throughput_fps: fps,
            resources: res,
            target_met: fps >= self.goal.target_fps,
            moves,
        })
    }
}

/// Smallest divisor of `max` strictly greater than `current`, if any.
fn next_divisor(current: usize, max: usize) -> Option<usize> {
    (current + 1..=max).find(|&d| max.is_multiple_of(d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaflow_model::prelude::*;

    #[test]
    fn next_divisor_steps_through_divisors() {
        assert_eq!(next_divisor(1, 3), Some(3));
        assert_eq!(next_divisor(3, 3), None);
        assert_eq!(next_divisor(4, 64), Some(8));
        assert_eq!(next_divisor(1, 27), Some(3));
    }

    #[test]
    fn explorer_reaches_edge_target_on_cnv() {
        let graph = topology::cnv_w2a2_cifar10().expect("builds");
        let result = FoldingExplorer::new(ExplorationGoal::edge_default())
            .explore(&graph)
            .expect("explores");
        assert!(
            result.target_met,
            "reached only {:.0} FPS",
            result.throughput_fps
        );
        assert!(result.throughput_fps >= 600.0);
        assert!(result.moves > 0);
        // Budget respected.
        let dev = FpgaDevice::zcu104();
        assert!(result.resources.lut as f64 <= dev.lut as f64 * 0.7);
        assert!(result.resources.bram36 as f64 <= dev.bram36 as f64 * 0.7);
    }

    #[test]
    fn explored_folding_is_valid_and_usable() {
        let graph = topology::tiny(QuantSpec::w2a2(), 4).expect("builds");
        let goal = ExplorationGoal {
            target_fps: 10_000.0,
            device: FpgaDevice::z7020(),
            utilization_cap: 0.8,
        };
        let result = FoldingExplorer::new(goal)
            .explore(&graph)
            .expect("explores");
        assert!(result.folding.validate(&graph).is_ok());
        // The folding compiles into every accelerator family.
        for kind in [
            AcceleratorKind::Finn,
            AcceleratorKind::FixedPruning,
            AcceleratorKind::FlexiblePruning,
        ] {
            assert!(DataflowAccelerator::compile(&graph, &result.folding, kind).is_ok());
        }
    }

    #[test]
    fn unreachable_target_reported_honestly() {
        let graph = topology::cnv_w2a2_cifar10().expect("builds");
        let goal = ExplorationGoal {
            target_fps: 1e9, // absurd
            device: FpgaDevice::zcu104(),
            utilization_cap: 0.7,
        };
        let result = FoldingExplorer::new(goal)
            .explore(&graph)
            .expect("explores");
        assert!(!result.target_met);
        assert!(result.throughput_fps < 1e9);
    }

    #[test]
    fn higher_target_spends_more_resources() {
        let graph = topology::cnv_w2a2_cifar10().expect("builds");
        let explore_at = |fps: f64| {
            FoldingExplorer::new(ExplorationGoal {
                target_fps: fps,
                ..ExplorationGoal::edge_default()
            })
            .explore(&graph)
            .expect("explores")
        };
        let low = explore_at(50.0);
        let high = explore_at(600.0);
        assert!(high.resources.lut >= low.resources.lut);
        assert!(high.throughput_fps >= low.throughput_fps);
    }
}
