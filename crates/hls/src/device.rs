//! FPGA device models.

use serde::{Deserialize, Serialize};

/// Programmable-logic capacities of a target FPGA.
///
/// The paper targets the Xilinx Zynq UltraScale+ MPSoC ZCU104 board
/// (XCZU7EV); [`FpgaDevice::zcu104`] carries its published capacities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FpgaDevice {
    /// Device/board name.
    pub name: String,
    /// Look-up tables.
    pub lut: u64,
    /// Flip-flops.
    pub ff: u64,
    /// 36 Kib block RAMs.
    pub bram36: u64,
    /// DSP48 slices.
    pub dsp: u64,
    /// Full configuration bitstream size in bytes (drives full
    /// reconfiguration time).
    pub bitstream_bytes: u64,
}

impl FpgaDevice {
    /// The ZCU104 board (XCZU7EV-2FFVC1156): 230,400 LUTs, 460,800 FFs,
    /// 312 BRAM36, 1,728 DSP48E2; ~31 MB full bitstream.
    #[must_use]
    pub fn zcu104() -> Self {
        Self {
            name: "zcu104".into(),
            lut: 230_400,
            ff: 460_800,
            bram36: 312,
            dsp: 1_728,
            bitstream_bytes: 31_000_000,
        }
    }

    /// A smaller edge-class device (Zynq-7020 / PYNQ-Z1-like) used in
    /// capacity tests: 53,200 LUTs, 106,400 FFs, 140 BRAM36, 220 DSPs.
    #[must_use]
    pub fn z7020() -> Self {
        Self {
            name: "z7020".into(),
            lut: 53_200,
            ff: 106_400,
            bram36: 140,
            dsp: 220,
            bitstream_bytes: 4_045_564,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zcu104_capacities() {
        let d = FpgaDevice::zcu104();
        assert_eq!(d.lut, 230_400);
        assert_eq!(d.bram36, 312);
        assert!(d.bitstream_bytes > 10_000_000);
    }

    #[test]
    fn z7020_is_smaller() {
        let big = FpgaDevice::zcu104();
        let small = FpgaDevice::z7020();
        assert!(small.lut < big.lut);
        assert!(small.bram36 < big.bram36);
        assert!(small.bitstream_bytes < big.bitstream_bytes);
    }
}
