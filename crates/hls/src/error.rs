//! Error types for the synthesis simulator.

use thiserror::Error;

/// Errors produced by synthesis, fitting or reconfiguration modelling.
#[derive(Debug, Clone, PartialEq, Error)]
#[non_exhaustive]
pub enum HlsError {
    /// The design does not fit the target device.
    #[error("design does not fit {device}: {resource} needs {needed}, device has {available}")]
    DoesNotFit {
        /// Device name.
        device: String,
        /// Exhausted resource.
        resource: String,
        /// Amount required.
        needed: u64,
        /// Amount available.
        available: u64,
    },

    /// Timing closure failed at the requested clock.
    #[error("timing failure: estimated fmax {fmax_mhz:.1} MHz below target {target_mhz:.1} MHz")]
    TimingFailure {
        /// Estimated maximum frequency.
        fmax_mhz: f64,
        /// Requested frequency.
        target_mhz: f64,
    },

    /// An invalid parameter was supplied to a model.
    #[error("invalid parameter: {0}")]
    InvalidParameter(String),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HlsError>();
    }

    #[test]
    fn fit_error_message() {
        let e = HlsError::DoesNotFit {
            device: "zcu104".into(),
            resource: "bram36".into(),
            needed: 400,
            available: 312,
        };
        let text = e.to_string();
        assert!(text.contains("zcu104"));
        assert!(text.contains("400"));
        assert!(text.contains("312"));
    }
}
