//! Post-synthesis resource estimation.
//!
//! Analytical per-module models in the spirit of FINN's own resource
//! estimators, calibrated against the deltas the paper reports on the CNV
//! accelerators (see crate docs): the flexible fabric lands near 1.92× the
//! original FINN LUT count with unchanged BRAM, and fixed-pruning
//! accelerators shed between ~1.5 % (5 % pruning, mostly rounded away by the
//! divisibility constraints) and ~46 % (85 % pruning) of the LUTs.
//!
//! Model components per MVTU:
//!
//! * *datapath*: `PE·SIMD` MAC lanes, cost scaling with the weight and
//!   activation widths — invariant under pruning (folding is kept);
//! * *accumulate/control*: per-PE accumulators and FSM — invariant;
//! * *thresholds*: per-output-channel threshold storage and comparators —
//!   scales with the (pruned) row count;
//! * *weight decode*: weight-memory addressing, decode and output muxing —
//!   scales with the stored weight bits (quadratic in pruning);
//! * *weight storage*: BRAM, partitioned `PE` ways (partition rounding makes
//!   small layers BRAM-inefficient, as on the real fabric).

use crate::error::HlsError;
use adaflow_dataflow::{DataflowAccelerator, ModuleKind, ModuleSpec};
use serde::{Deserialize, Serialize};
use std::ops::Add;

/// LUT cost per MAC lane bit-product term.
const LANE_COST_PER_BIT_PRODUCT: f64 = 3.0;
/// Fixed LUT cost per MAC lane.
const LANE_BASE: f64 = 4.0;
/// LUT cost per PE (accumulator + output logic).
const PE_COST: f64 = 64.0;
/// Control FSM LUTs per MVTU.
const MVTU_CTRL: f64 = 200.0;
/// LUTs per stored threshold level (storage + comparator amortized).
const THRESHOLD_COST: f64 = 2.2;
/// Stored weight bits per LUT of decode/mux logic.
const WEIGHT_DECODE_BITS_PER_LUT: f64 = 96.0;
/// Usable bits per BRAM36 after padding losses.
const BRAM_USABLE_BITS: u64 = 32_768;
/// LUT multiplier of the flexible MVTU template (runtime-controllable loop
/// bounds, channel gating).
const FLEX_MVTU_FACTOR: f64 = 1.8;
/// LUT multiplier of the flexible SWU template.
const FLEX_SWU_FACTOR: f64 = 2.0;
/// LUT multiplier of flexible channel-unrolled modules (MaxPool).
const FLEX_POOL_FACTOR: f64 = 2.4;
/// Flat LUT cost of the 16-bit runtime channel-configuration port.
const FLEX_PORT_COST: f64 = 96.0;
/// LUTs of inter-module stream FIFO glue, per module.
const FIFO_GLUE_LUT: f64 = 48.0;
/// BRAM36 of inter-module stream FIFOs, per two modules.
const FIFO_BRAM_PER_TWO_MODULES: u64 = 1;

/// Estimated programmable-logic resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ResourceEstimate {
    /// Look-up tables.
    pub lut: u64,
    /// Flip-flops.
    pub ff: u64,
    /// 36 Kib block RAMs.
    pub bram36: u64,
    /// DSP48 slices.
    pub dsp: u64,
}

impl Add for ResourceEstimate {
    type Output = ResourceEstimate;

    fn add(self, rhs: ResourceEstimate) -> ResourceEstimate {
        ResourceEstimate {
            lut: self.lut + rhs.lut,
            ff: self.ff + rhs.ff,
            bram36: self.bram36 + rhs.bram36,
            dsp: self.dsp + rhs.dsp,
        }
    }
}

impl ResourceEstimate {
    /// Sums an iterator of estimates.
    pub fn total<I: IntoIterator<Item = ResourceEstimate>>(iter: I) -> ResourceEstimate {
        iter.into_iter().fold(ResourceEstimate::default(), Add::add)
    }
}

/// Estimates the resources of one module.
#[must_use]
pub fn estimate_module(module: &ModuleSpec) -> ResourceEstimate {
    let (mut lut, bram, dsp) = match &module.kind {
        ModuleKind::Mvtu {
            rows,
            cols,
            pe,
            simd,
            weight_bits,
            act_bits,
            threshold_levels,
            ..
        } => {
            let lanes = (*pe * *simd) as f64;
            let datapath = lanes
                * (LANE_COST_PER_BIT_PRODUCT * f64::from(*weight_bits) * f64::from(*act_bits)
                    + LANE_BASE);
            let accumulate = *pe as f64 * PE_COST + MVTU_CTRL;
            let thresholds = (*rows * *threshold_levels) as f64 * THRESHOLD_COST;
            let weight_bits_total = (*rows * *cols) as u64 * u64::from(*weight_bits);
            let decode = weight_bits_total as f64 / WEIGHT_DECODE_BITS_PER_LUT;
            // Weight memory is partitioned PE ways; each partition rounds up
            // to whole BRAMs.
            let per_partition = (weight_bits_total / *pe as u64).max(1);
            let bram = *pe as u64 * per_partition.div_ceil(BRAM_USABLE_BITS);
            let dsp = if *weight_bits >= 4 && *act_bits >= 4 {
                (*pe * *simd) as u64
            } else {
                0
            };
            let mut lut = datapath + accumulate + thresholds + decode;
            if module.flexible {
                lut = lut * FLEX_MVTU_FACTOR + FLEX_PORT_COST;
            }
            (lut, bram, dsp)
        }
        ModuleKind::Swu {
            in_channels,
            kernel,
            out_pixels,
            simd,
            act_bits,
        } => {
            let mut lut = (*simd * kernel * kernel) as f64 * f64::from(*act_bits) * 2.0 + 220.0;
            if module.flexible {
                lut = lut * FLEX_SWU_FACTOR + FLEX_PORT_COST;
            }
            // Line buffer: (k-1) rows of the (approximate) input width.
            let width = (*out_pixels as f64).sqrt().ceil() as u64 + (*kernel as u64 - 1);
            let buffer_bits =
                (*kernel as u64 - 1) * width * *in_channels as u64 * u64::from(*act_bits);
            (lut, buffer_bits.div_ceil(BRAM_USABLE_BITS).max(1), 0)
        }
        ModuleKind::MaxPool {
            channels, act_bits, ..
        } => {
            let mut lut = *channels as f64 * f64::from(*act_bits) * 3.0 + 150.0;
            if module.flexible {
                lut = lut * FLEX_POOL_FACTOR + FLEX_PORT_COST;
            }
            (lut, 1, 0)
        }
        ModuleKind::LabelSelect { classes } => ((*classes * 24 + 120) as f64, 0, 0),
    };
    lut += FIFO_GLUE_LUT;
    let lut = lut.round() as u64;
    ResourceEstimate {
        lut,
        ff: (lut as f64 * 1.05).round() as u64,
        bram36: bram,
        dsp,
    }
}

/// Estimates the aggregate resources of a compiled accelerator, including
/// inter-module FIFO overhead.
///
/// # Errors
///
/// Returns [`HlsError::InvalidParameter`] if the accelerator has no modules
/// (cannot happen for compiled accelerators; guards hand-built inputs).
pub fn estimate_accelerator(accel: &DataflowAccelerator) -> Result<ResourceEstimate, HlsError> {
    if accel.modules().is_empty() {
        return Err(HlsError::InvalidParameter(
            "accelerator has no modules".into(),
        ));
    }
    let mut total = ResourceEstimate::total(accel.modules().iter().map(estimate_module));
    total.bram36 += accel.modules().len() as u64 / 2 * FIFO_BRAM_PER_TWO_MODULES;
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaflow_dataflow::AcceleratorKind;
    use adaflow_model::prelude::*;
    use adaflow_pruning::{DataflowAwarePruner, FinnConfig};

    fn cnv_accel(kind: AcceleratorKind) -> DataflowAccelerator {
        let g = topology::cnv_w2a2_cifar10().expect("builds");
        let cfg = FinnConfig::cnv_reference(&g).expect("valid");
        DataflowAccelerator::compile(&g, &cfg, kind).expect("compiles")
    }

    fn pruned_accel(rate: f64) -> DataflowAccelerator {
        let g = topology::cnv_w2a2_cifar10().expect("builds");
        let cfg = FinnConfig::cnv_reference(&g).expect("valid");
        let pruned = DataflowAwarePruner::new(cfg.clone())
            .prune(&g, rate)
            .expect("prunes");
        DataflowAccelerator::compile(&pruned.graph, &cfg, AcceleratorKind::FixedPruning)
            .expect("compiles")
    }

    #[test]
    fn finn_cnv_fits_zcu104_with_bram_dominant() {
        let res = estimate_accelerator(&cnv_accel(AcceleratorKind::Finn)).expect("estimates");
        let dev = crate::device::FpgaDevice::zcu104();
        let lut_util = res.lut as f64 / dev.lut as f64;
        let bram_util = res.bram36 as f64 / dev.bram36 as f64;
        assert!(res.lut < dev.lut && res.bram36 < dev.bram36, "must fit");
        // Paper Fig. 5(a): BRAM is the resource with the highest usage.
        assert!(
            bram_util > lut_util,
            "BRAM util {bram_util:.2} should exceed LUT util {lut_util:.2}"
        );
    }

    #[test]
    fn flexible_lut_ratio_matches_paper() {
        let finn = estimate_accelerator(&cnv_accel(AcceleratorKind::Finn)).expect("estimates");
        let flex =
            estimate_accelerator(&cnv_accel(AcceleratorKind::FlexiblePruning)).expect("estimates");
        let ratio = flex.lut as f64 / finn.lut as f64;
        // Paper: 1.92x; accept a calibration band around it.
        assert!((1.7..=2.1).contains(&ratio), "flexible LUT ratio {ratio}");
    }

    #[test]
    fn flexible_bram_unchanged() {
        let finn = estimate_accelerator(&cnv_accel(AcceleratorKind::Finn)).expect("estimates");
        let flex =
            estimate_accelerator(&cnv_accel(AcceleratorKind::FlexiblePruning)).expect("estimates");
        // Paper: "Flexible-Pruning shows no increase in BRAM usage".
        assert_eq!(finn.bram36, flex.bram36);
    }

    #[test]
    fn flexible_fits_zcu104() {
        let flex =
            estimate_accelerator(&cnv_accel(AcceleratorKind::FlexiblePruning)).expect("estimates");
        let dev = crate::device::FpgaDevice::zcu104();
        assert!(flex.lut < dev.lut);
        assert!(flex.bram36 < dev.bram36);
    }

    #[test]
    fn heavy_pruning_sheds_about_half_the_luts() {
        let finn = estimate_accelerator(&cnv_accel(AcceleratorKind::Finn)).expect("estimates");
        let p85 = estimate_accelerator(&pruned_accel(0.85)).expect("estimates");
        let reduction = 1.0 - p85.lut as f64 / finn.lut as f64;
        // Paper: 46.2% at 85% pruning; accept a band.
        assert!(
            (0.35..=0.55).contains(&reduction),
            "LUT reduction {reduction}"
        );
    }

    #[test]
    fn light_pruning_sheds_little() {
        let finn = estimate_accelerator(&cnv_accel(AcceleratorKind::Finn)).expect("estimates");
        let p05 = estimate_accelerator(&pruned_accel(0.05)).expect("estimates");
        let reduction = 1.0 - p05.lut as f64 / finn.lut as f64;
        // Paper: 1.5% at 5% pruning (divisibility rounds most of it away).
        assert!(
            (0.0..=0.08).contains(&reduction),
            "LUT reduction {reduction}"
        );
    }

    #[test]
    fn lut_reduction_is_monotone_in_rate() {
        let mut prev = u64::MAX;
        for step in [0.0, 0.25, 0.5, 0.85] {
            let res = estimate_accelerator(&pruned_accel(step)).expect("estimates");
            assert!(res.lut <= prev, "LUTs increased at rate {step}");
            prev = res.lut;
        }
    }

    #[test]
    fn pruning_reduces_bram_too() {
        let finn = estimate_accelerator(&cnv_accel(AcceleratorKind::Finn)).expect("estimates");
        let p85 = estimate_accelerator(&pruned_accel(0.85)).expect("estimates");
        assert!(p85.bram36 < finn.bram36);
    }

    #[test]
    fn low_precision_uses_no_dsps() {
        let res = estimate_accelerator(&cnv_accel(AcceleratorKind::Finn)).expect("estimates");
        assert_eq!(res.dsp, 0, "W2A2 maps to LUT arithmetic, not DSPs");
    }

    #[test]
    fn wide_precision_uses_dsps() {
        let m = ModuleSpec {
            name: "wide".into(),
            kind: ModuleKind::Mvtu {
                rows: 64,
                cols: 64,
                pe: 8,
                simd: 8,
                out_pixels: 1,
                weight_bits: 8,
                act_bits: 8,
                threshold_levels: 0,
            },
            flexible: false,
        };
        assert_eq!(estimate_module(&m).dsp, 64);
    }

    #[test]
    fn estimate_totals_add_up() {
        let a = ResourceEstimate {
            lut: 1,
            ff: 2,
            bram36: 3,
            dsp: 4,
        };
        let b = ResourceEstimate {
            lut: 10,
            ff: 20,
            bram36: 30,
            dsp: 40,
        };
        let t = ResourceEstimate::total([a, b]);
        assert_eq!(
            t,
            ResourceEstimate {
                lut: 11,
                ff: 22,
                bram36: 33,
                dsp: 44
            }
        );
    }
}
