//! # adaflow-hls — synthesis, resource, power and reconfiguration models
//!
//! Stands in for the Vivado/Vitis HLS leg of the original toolflow. Given a
//! compiled [`adaflow_dataflow::DataflowAccelerator`], this crate estimates:
//!
//! * **resources** (LUT / FF / BRAM36 / DSP) per module and in aggregate,
//!   calibrated to the paper's reported deltas (Flexible ≈ 1.92× the LUTs of
//!   original FINN with unchanged BRAM; Fixed-Pruning −1.5 %…−46.2 % LUT
//!   across the 5–85 % pruning sweep) — [`resources`];
//! * **timing**: a simple Fmax model validating 100 MHz closure — [`synth`];
//! * **power**: static + activity-scaled dynamic power and energy per
//!   inference, calibrated to the ~1 W operating points of Table I —
//!   [`power`];
//! * **device fit**: a ZCU104 (XCZU7EV) capacity model — [`device`];
//! * **bitstreams & reconfiguration**: full-device reconfiguration timing
//!   (~145 ms on the ZCU104, matching the paper's "five reconfigurations ≈
//!   725 ms") — [`reconfig`].
//!
//! ## Quickstart
//!
//! ```
//! use adaflow_model::prelude::*;
//! use adaflow_pruning::FinnConfig;
//! use adaflow_dataflow::{AcceleratorKind, DataflowAccelerator};
//! use adaflow_hls::{synthesize, FpgaDevice};
//!
//! let graph = topology::cnv_w2a2_cifar10()?;
//! let folding = FinnConfig::cnv_reference(&graph)?;
//! let accel = DataflowAccelerator::compile(&graph, &folding, AcceleratorKind::Finn)?;
//! let synth = synthesize(&accel, &FpgaDevice::zcu104())?;
//! assert!(synth.resources.bram36 > 0);
//! assert!(synth.fmax_mhz >= 100.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod error;
pub mod power;
pub mod reconfig;
pub mod report;
pub mod resources;
pub mod synth;

pub use device::FpgaDevice;
pub use error::HlsError;
pub use power::{PowerModel, PowerReport};
pub use reconfig::{Bitstream, ReconfigurationModel};
pub use report::{UtilizationReport, UtilizationRow};
pub use resources::{estimate_accelerator, estimate_module, ResourceEstimate};
pub use synth::{synthesize, synthesize_traced, SynthesizedAccelerator};
