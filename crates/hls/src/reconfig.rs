//! Bitstreams and FPGA reconfiguration timing.
//!
//! Switching between Fixed-Pruning accelerators requires writing a new
//! bitstream through the configuration port. On the ZCU104 the PCAP sustains
//! roughly 250 MB/s, which for the ~31 MB full-device bitstream plus driver
//! overhead yields ≈ 145 ms — consistent with the paper's report of five
//! reconfigurations totalling ≈ 725 ms and with the starred "original
//! CNVW2A2 FINN reconf. time" marker of Fig. 1(b).

use crate::device::FpgaDevice;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Sustained configuration-port throughput, bytes/second (ZCU104 PCAP).
pub const PCAP_BYTES_PER_SECOND: f64 = 250_000_000.0;
/// Fixed driver/handshake overhead per reconfiguration.
pub const DRIVER_OVERHEAD: Duration = Duration::from_millis(21);

/// A synthesized configuration image.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bitstream {
    /// Name of the accelerator this bitstream configures.
    pub accelerator: String,
    /// Image size in bytes (full-device images have the device's size).
    pub bytes: u64,
}

impl Bitstream {
    /// A full-device bitstream for `device` configuring `accelerator`.
    #[must_use]
    pub fn full_device(accelerator: impl Into<String>, device: &FpgaDevice) -> Self {
        Self {
            accelerator: accelerator.into(),
            bytes: device.bitstream_bytes,
        }
    }
}

/// Reconfiguration timing model.
///
/// Supports both full-device reconfiguration (the paper's setting) and
/// dynamic *partial* reconfiguration — an extension in the spirit of
/// Seyoum et al. (the paper's reference 16), where only the accelerator's
/// reconfigurable region is rewritten. A `region_fraction` of 1.0 (the
/// default) is full-device reconfiguration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReconfigurationModel {
    /// Configuration-port throughput in bytes per second.
    pub bytes_per_second: f64,
    /// Fixed per-reconfiguration overhead.
    pub overhead: Duration,
    /// Fraction of the bitstream rewritten per reconfiguration, `(0, 1]`.
    pub region_fraction: f64,
}

impl Default for ReconfigurationModel {
    fn default() -> Self {
        Self {
            bytes_per_second: PCAP_BYTES_PER_SECOND,
            overhead: DRIVER_OVERHEAD,
            region_fraction: 1.0,
        }
    }
}

impl ReconfigurationModel {
    /// Creates a full-device model with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_second` is not positive.
    #[must_use]
    pub fn new(bytes_per_second: f64, overhead: Duration) -> Self {
        assert!(bytes_per_second > 0.0, "throughput must be positive");
        Self {
            bytes_per_second,
            overhead,
            region_fraction: 1.0,
        }
    }

    /// A dynamic-partial-reconfiguration model rewriting only
    /// `region_fraction` of the device per swap.
    ///
    /// # Panics
    ///
    /// Panics if `region_fraction` is outside `(0, 1]`.
    #[must_use]
    pub fn partial(region_fraction: f64) -> Self {
        assert!(
            region_fraction > 0.0 && region_fraction <= 1.0,
            "region fraction must be in (0, 1]"
        );
        Self {
            region_fraction,
            ..Self::default()
        }
    }

    /// A model with a fixed reconfiguration time regardless of bitstream
    /// size — used to sweep reconfiguration times as in Fig. 1(b).
    #[must_use]
    pub fn fixed_time(time: Duration) -> Self {
        // Infinite-throughput port: only the overhead term remains.
        Self {
            bytes_per_second: f64::INFINITY,
            overhead: time,
            region_fraction: 1.0,
        }
    }

    /// Time to load `bitstream` (scaled by the partial region, if any).
    #[must_use]
    pub fn reconfiguration_time(&self, bitstream: &Bitstream) -> Duration {
        let transfer = bitstream.bytes as f64 * self.region_fraction / self.bytes_per_second;
        self.overhead + Duration::from_secs_f64(transfer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zcu104_full_reconfiguration_near_145ms() {
        let model = ReconfigurationModel::default();
        let bs = Bitstream::full_device("cnv-w2a2", &FpgaDevice::zcu104());
        let t = model.reconfiguration_time(&bs).as_secs_f64();
        // Paper: five reconfigurations ≈ 725 ms → ≈ 145 ms each.
        assert!((0.13..=0.16).contains(&t), "reconfiguration time {t}s");
    }

    #[test]
    fn five_reconfigurations_near_725ms() {
        let model = ReconfigurationModel::default();
        let bs = Bitstream::full_device("cnv-w2a2", &FpgaDevice::zcu104());
        let total = model.reconfiguration_time(&bs).as_secs_f64() * 5.0;
        assert!((0.65..=0.8).contains(&total), "total {total}s");
    }

    #[test]
    fn smaller_device_reconfigures_faster() {
        let model = ReconfigurationModel::default();
        let big = Bitstream::full_device("a", &FpgaDevice::zcu104());
        let small = Bitstream::full_device("a", &FpgaDevice::z7020());
        assert!(model.reconfiguration_time(&small) < model.reconfiguration_time(&big));
    }

    #[test]
    fn fixed_time_model_ignores_size() {
        let model = ReconfigurationModel::fixed_time(Duration::from_millis(290));
        let big = Bitstream::full_device("a", &FpgaDevice::zcu104());
        let tiny = Bitstream {
            accelerator: "a".into(),
            bytes: 1,
        };
        assert_eq!(model.reconfiguration_time(&big), Duration::from_millis(290));
        assert_eq!(
            model.reconfiguration_time(&tiny),
            Duration::from_millis(290)
        );
    }

    #[test]
    fn partial_reconfiguration_is_proportionally_faster() {
        let full = ReconfigurationModel::default();
        let partial = ReconfigurationModel::partial(0.25);
        let bs = Bitstream::full_device("a", &FpgaDevice::zcu104());
        let tf = full.reconfiguration_time(&bs).as_secs_f64();
        let tp = partial.reconfiguration_time(&bs).as_secs_f64();
        let overhead = DRIVER_OVERHEAD.as_secs_f64();
        assert!(((tp - overhead) / (tf - overhead) - 0.25).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "region fraction must be in (0, 1]")]
    fn partial_rejects_zero_fraction() {
        let _ = ReconfigurationModel::partial(0.0);
    }

    #[test]
    fn zero_time_model_for_ideal_switching() {
        // The 0 ms curve of Fig. 1(b).
        let model = ReconfigurationModel::fixed_time(Duration::ZERO);
        let bs = Bitstream::full_device("a", &FpgaDevice::zcu104());
        assert_eq!(model.reconfiguration_time(&bs), Duration::ZERO);
    }
}
