//! Synthesis: resources + timing + power + bitstream in one artifact.

use crate::device::FpgaDevice;
use crate::error::HlsError;
use crate::power::PowerModel;
use crate::reconfig::Bitstream;
use crate::resources::{estimate_accelerator, ResourceEstimate};
use adaflow_dataflow::DataflowAccelerator;
use adaflow_telemetry::{EventKind, SinkHandle};
use serde::{Deserialize, Serialize};

/// Unloaded fabric Fmax in MHz (sparse design, short routes).
const BASE_FMAX_MHZ: f64 = 250.0;
/// Fmax degradation per unit of LUT utilization (routing congestion).
const FMAX_CONGESTION_SLOPE: f64 = 0.45;

/// The result of "synthesizing" an accelerator for a device.
///
/// Bundles everything the AdaFlow library needs per accelerator: fit-checked
/// resources, an Fmax estimate, a power model and the configuration
/// bitstream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthesizedAccelerator {
    /// Accelerator instance name.
    pub name: String,
    /// Target device name.
    pub device: String,
    /// Estimated resources.
    pub resources: ResourceEstimate,
    /// Estimated maximum clock frequency.
    pub fmax_mhz: f64,
    /// Achieved clock in MHz (the compile-time target, 100 MHz).
    pub clock_mhz: f64,
    /// Steady-state throughput at the achieved clock.
    pub throughput_fps: f64,
    /// Single-frame latency in seconds at the achieved clock.
    pub latency_s: f64,
    /// Power model derived from the resources.
    pub power: PowerModel,
    /// Full-device configuration image.
    pub bitstream: Bitstream,
}

/// Synthesizes `accel` for `device`: estimates resources, checks fit and
/// timing at the accelerator's clock, and derives the power model and
/// bitstream.
///
/// # Errors
///
/// Returns [`HlsError::DoesNotFit`] when any resource exceeds the device,
/// or [`HlsError::TimingFailure`] when the congestion-degraded Fmax falls
/// below the requested clock.
pub fn synthesize(
    accel: &DataflowAccelerator,
    device: &FpgaDevice,
) -> Result<SynthesizedAccelerator, HlsError> {
    synthesize_traced(accel, device, &SinkHandle::default())
}

/// [`synthesize`] with telemetry: one [`EventKind::SynthReport`] event is
/// emitted per attempt, successful or not (`fits: false` when the design is
/// rejected for resources or timing). Synthesis happens at design time, so
/// events are stamped at `t = 0`.
///
/// # Errors
///
/// Same contract as [`synthesize`].
pub fn synthesize_traced(
    accel: &DataflowAccelerator,
    device: &FpgaDevice,
    sink: &SinkHandle,
) -> Result<SynthesizedAccelerator, HlsError> {
    // Debug builds verify the module pipeline before estimating anything:
    // a malformed pipeline here is a compiler bug, not a user error.
    #[cfg(debug_assertions)]
    adaflow_dataflow::verify::debug_assert_accelerator(accel, "synthesize");
    // And cross-check the DF004 rate fixpoint against the performance
    // model: at the sized FIFO depth the max-plus steady state must equal
    // the analytic initiation interval the throughput figures below use.
    #[cfg(debug_assertions)]
    if let Some(sizing) = adaflow_dataflow::try_size_fifos(accel) {
        let stages: Vec<adaflow_verify::Stage> = accel
            .modules()
            .iter()
            .map(|m| adaflow_verify::Stage::new(m.name.clone(), m.cycles_per_frame()))
            .collect();
        let rate = adaflow_verify::rate_balance_uniform(&stages, sizing.depth);
        assert_eq!(
            rate.steady_ii,
            accel.initiation_interval(),
            "rate fixpoint and performance model disagree at synthesize for {}",
            accel.name(),
        );
    }
    let report = |fmax_mhz: f64, res: Option<&ResourceEstimate>, fits: bool| {
        if sink.enabled() {
            sink.emit(
                0.0,
                EventKind::SynthReport {
                    accelerator: accel.name().to_string(),
                    fmax_mhz,
                    lut: res.map_or(0, |r| r.lut),
                    bram36: res.map_or(0, |r| r.bram36),
                    fits,
                },
            );
        }
    };
    let resources = estimate_accelerator(accel)?;
    if let Err(e) = check_fit(&resources, device) {
        report(0.0, Some(&resources), false);
        return Err(e);
    }

    let lut_util = resources.lut as f64 / device.lut as f64;
    let fmax_mhz = BASE_FMAX_MHZ * (1.0 - FMAX_CONGESTION_SLOPE * lut_util);
    let clock_mhz = accel.clock_hz() as f64 / 1e6;
    if fmax_mhz < clock_mhz {
        report(fmax_mhz, Some(&resources), false);
        return Err(HlsError::TimingFailure {
            fmax_mhz,
            target_mhz: clock_mhz,
        });
    }
    report(fmax_mhz, Some(&resources), true);

    Ok(SynthesizedAccelerator {
        name: accel.name().to_string(),
        device: device.name.clone(),
        resources,
        fmax_mhz,
        clock_mhz,
        throughput_fps: accel.throughput_fps(),
        latency_s: accel.latency_cycles() as f64 / accel.clock_hz() as f64,
        power: PowerModel::new(resources),
        bitstream: Bitstream::full_device(accel.name(), device),
    })
}

fn check_fit(res: &ResourceEstimate, device: &FpgaDevice) -> Result<(), HlsError> {
    let checks: [(&str, u64, u64); 4] = [
        ("lut", res.lut, device.lut),
        ("ff", res.ff, device.ff),
        ("bram36", res.bram36, device.bram36),
        ("dsp", res.dsp, device.dsp),
    ];
    for (name, needed, available) in checks {
        if needed > available {
            return Err(HlsError::DoesNotFit {
                device: device.name.clone(),
                resource: name.into(),
                needed,
                available,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaflow_dataflow::AcceleratorKind;
    use adaflow_model::prelude::*;
    use adaflow_pruning::FinnConfig;

    fn cnv_accel(kind: AcceleratorKind) -> DataflowAccelerator {
        let g = topology::cnv_w2a2_cifar10().expect("builds");
        let cfg = FinnConfig::cnv_reference(&g).expect("valid");
        DataflowAccelerator::compile(&g, &cfg, kind).expect("compiles")
    }

    #[test]
    fn cnv_synthesizes_on_zcu104_at_100mhz() {
        let s = synthesize(&cnv_accel(AcceleratorKind::Finn), &FpgaDevice::zcu104())
            .expect("synthesizes");
        assert_eq!(s.clock_mhz, 100.0);
        assert!(s.fmax_mhz >= 100.0);
        assert!(s.throughput_fps > 100.0);
        assert!(s.latency_s > 0.0);
        assert_eq!(s.device, "zcu104");
    }

    #[test]
    fn flexible_synthesizes_too() {
        let s = synthesize(
            &cnv_accel(AcceleratorKind::FlexiblePruning),
            &FpgaDevice::zcu104(),
        )
        .expect("synthesizes");
        assert!(s.fmax_mhz >= 100.0, "flexible must still close timing");
    }

    #[test]
    fn cnv_does_not_fit_z7020() {
        // The CNV dataflow needs more BRAM than a Zynq-7020 offers.
        let err = synthesize(&cnv_accel(AcceleratorKind::Finn), &FpgaDevice::z7020()).unwrap_err();
        assert!(matches!(err, HlsError::DoesNotFit { .. }));
    }

    #[test]
    fn tiny_fits_z7020() {
        let g = topology::tiny(QuantSpec::w2a2(), 4).expect("builds");
        let cfg = FinnConfig::auto(&g).expect("auto");
        let accel =
            DataflowAccelerator::compile(&g, &cfg, AcceleratorKind::Finn).expect("compiles");
        assert!(synthesize(&accel, &FpgaDevice::z7020()).is_ok());
    }

    #[test]
    fn congestion_lowers_fmax() {
        let small = synthesize(
            &cnv_accel(AcceleratorKind::FixedPruning),
            &FpgaDevice::zcu104(),
        )
        .expect("synthesizes");
        let big = synthesize(
            &cnv_accel(AcceleratorKind::FlexiblePruning),
            &FpgaDevice::zcu104(),
        )
        .expect("synthesizes");
        assert!(big.fmax_mhz < small.fmax_mhz);
    }

    #[test]
    fn excessive_clock_fails_timing() {
        let accel = cnv_accel(AcceleratorKind::Finn).with_clock(400_000_000);
        let err = synthesize(&accel, &FpgaDevice::zcu104()).unwrap_err();
        assert!(matches!(err, HlsError::TimingFailure { .. }));
    }

    #[test]
    fn fit_check_names_the_exhausted_resource() {
        // A device with plenty of LUTs but no BRAM: the error must name
        // bram36, not the first resource checked.
        let tiny_bram = FpgaDevice {
            name: "no-bram".into(),
            lut: 10_000_000,
            ff: 10_000_000,
            bram36: 1,
            dsp: 1_000,
            bitstream_bytes: 1,
        };
        let err = synthesize(&cnv_accel(AcceleratorKind::Finn), &tiny_bram).unwrap_err();
        match err {
            HlsError::DoesNotFit { resource, .. } => assert_eq!(resource, "bram36"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn bitstream_is_full_device() {
        let s = synthesize(&cnv_accel(AcceleratorKind::Finn), &FpgaDevice::zcu104())
            .expect("synthesizes");
        assert_eq!(s.bitstream.bytes, FpgaDevice::zcu104().bitstream_bytes);
        assert!(s.bitstream.accelerator.contains("finn"));
    }
}
