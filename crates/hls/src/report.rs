//! Utilization reports.
//!
//! Renders synthesized-accelerator resource usage against a device the way
//! Vivado's utilization report does: absolute counts and percentages per
//! resource class, with the dominant resource called out — the data behind
//! Fig. 5(a).

use crate::device::FpgaDevice;
use crate::resources::ResourceEstimate;
use crate::synth::SynthesizedAccelerator;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One resource row of a utilization report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilizationRow {
    /// Resource class (`LUT`, `FF`, `BRAM36`, `DSP`).
    pub resource: String,
    /// Amount used.
    pub used: u64,
    /// Device capacity.
    pub available: u64,
    /// Utilization percentage.
    pub percent: f64,
}

/// A per-device utilization report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilizationReport {
    /// Accelerator name.
    pub accelerator: String,
    /// Device name.
    pub device: String,
    /// Rows in LUT/FF/BRAM/DSP order.
    pub rows: Vec<UtilizationRow>,
}

impl UtilizationReport {
    /// Builds a report from raw resources and a device.
    #[must_use]
    pub fn new(
        accelerator: impl Into<String>,
        resources: ResourceEstimate,
        device: &FpgaDevice,
    ) -> Self {
        let row = |name: &str, used: u64, available: u64| UtilizationRow {
            resource: name.to_string(),
            used,
            available,
            percent: if available == 0 {
                0.0
            } else {
                used as f64 / available as f64 * 100.0
            },
        };
        Self {
            accelerator: accelerator.into(),
            device: device.name.clone(),
            rows: vec![
                row("LUT", resources.lut, device.lut),
                row("FF", resources.ff, device.ff),
                row("BRAM36", resources.bram36, device.bram36),
                row("DSP", resources.dsp, device.dsp),
            ],
        }
    }

    /// Builds a report from a synthesized accelerator.
    #[must_use]
    pub fn of(synth: &SynthesizedAccelerator, device: &FpgaDevice) -> Self {
        Self::new(synth.name.clone(), synth.resources, device)
    }

    /// The resource class with the highest utilization — the paper's
    /// "limiting factor" (BRAM for CNV-class dataflows).
    ///
    /// # Panics
    ///
    /// Never panics: reports always have four rows.
    #[must_use]
    pub fn limiting_resource(&self) -> &UtilizationRow {
        self.rows
            .iter()
            .max_by(|a, b| a.percent.partial_cmp(&b.percent).expect("finite"))
            .expect("reports have rows")
    }
}

impl fmt::Display for UtilizationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} on {}", self.accelerator, self.device)?;
        writeln!(
            f,
            "{:<8} {:>10} {:>10} {:>7}",
            "resource", "used", "available", "util%"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<8} {:>10} {:>10} {:>6.1}%",
                r.resource, r.used, r.available, r.percent
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::synthesize;
    use adaflow_dataflow::{AcceleratorKind, DataflowAccelerator};
    use adaflow_model::prelude::*;
    use adaflow_pruning::FinnConfig;

    fn cnv_report() -> UtilizationReport {
        let g = topology::cnv_w2a2_cifar10().expect("builds");
        let cfg = FinnConfig::cnv_reference(&g).expect("valid");
        let accel =
            DataflowAccelerator::compile(&g, &cfg, AcceleratorKind::Finn).expect("compiles");
        let device = FpgaDevice::zcu104();
        let synth = synthesize(&accel, &device).expect("synthesizes");
        UtilizationReport::of(&synth, &device)
    }

    #[test]
    fn report_has_four_rows_with_consistent_percentages() {
        let report = cnv_report();
        assert_eq!(report.rows.len(), 4);
        for row in &report.rows {
            let expect = row.used as f64 / row.available as f64 * 100.0;
            assert!((row.percent - expect).abs() < 1e-9);
            assert!(row.percent <= 100.0, "{} over capacity", row.resource);
        }
    }

    #[test]
    fn bram_is_the_limiting_resource_for_cnv() {
        let report = cnv_report();
        assert_eq!(report.limiting_resource().resource, "BRAM36");
    }

    #[test]
    fn display_renders_table() {
        let text = cnv_report().to_string();
        assert!(text.contains("BRAM36"));
        assert!(text.contains("zcu104"));
        assert!(text.contains('%'));
    }

    #[test]
    fn zero_capacity_handled() {
        let device = FpgaDevice {
            name: "weird".into(),
            lut: 100,
            ff: 100,
            bram36: 10,
            dsp: 0,
            bitstream_bytes: 1,
        };
        let report = UtilizationReport::new(
            "a",
            ResourceEstimate {
                lut: 10,
                ff: 10,
                bram36: 1,
                dsp: 0,
            },
            &device,
        );
        assert_eq!(report.rows[3].percent, 0.0);
    }
}
