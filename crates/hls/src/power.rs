//! Power and energy modelling.
//!
//! Board power is modelled as `P = P_static + duty · activity · P_dyn`,
//! where `P_dyn` scales with the instantiated resources (toggling fabric),
//! `duty` is the fraction of time the accelerator is processing frames
//! (set by the serving workload), and `activity` accounts for the fraction
//! of a flexible fabric actually exercised by the loaded (pruned) model.
//!
//! Calibration anchors from the paper: the original FINN CNVW2A2
//! accelerator dissipates ≈ 1.07 W when saturated; fixed-pruned variants sit
//! near 0.94–1.01 W under partial duty; the flexible fabric under heavy
//! switching reaches ≈ 1.1–1.2 W (Table I).

use crate::resources::ResourceEstimate;
use serde::{Deserialize, Serialize};

/// Static (always-on) power of the programmable logic + support rails, W.
pub const STATIC_POWER_W: f64 = 0.55;
/// Clock-tree dynamic power at 100 MHz, W.
pub const CLOCK_TREE_POWER_W: f64 = 0.05;
/// Dynamic power per active LUT, W.
pub const LUT_POWER_W: f64 = 4.5e-6;
/// Dynamic power per active BRAM36, W.
pub const BRAM_POWER_W: f64 = 1.0e-3;
/// Dynamic power per active DSP slice, W.
pub const DSP_POWER_W: f64 = 1.2e-3;

/// A point power evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerReport {
    /// Total board power in watts.
    pub total_w: f64,
    /// Static component in watts.
    pub static_w: f64,
    /// Dynamic component in watts (after duty/activity scaling).
    pub dynamic_w: f64,
}

/// Resource-driven power model of one synthesized accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    resources: ResourceEstimate,
}

impl PowerModel {
    /// Builds a power model from synthesized resources.
    #[must_use]
    pub fn new(resources: ResourceEstimate) -> Self {
        Self { resources }
    }

    /// The resources this model is based on.
    #[must_use]
    pub fn resources(&self) -> ResourceEstimate {
        self.resources
    }

    /// Peak dynamic power with everything toggling (duty = activity = 1).
    #[must_use]
    pub fn peak_dynamic_w(&self) -> f64 {
        CLOCK_TREE_POWER_W
            + self.resources.lut as f64 * LUT_POWER_W
            + self.resources.bram36 as f64 * BRAM_POWER_W
            + self.resources.dsp as f64 * DSP_POWER_W
    }

    /// Board power at the given `duty` (fraction of time busy, `0..=1`) and
    /// `activity` (fraction of the fabric exercised by the loaded model,
    /// `0..=1`; `1.0` for fixed accelerators running their own model).
    ///
    /// # Panics
    ///
    /// Panics if `duty` or `activity` fall outside `[0, 1]`.
    #[must_use]
    pub fn power(&self, duty: f64, activity: f64) -> PowerReport {
        assert!((0.0..=1.0).contains(&duty), "duty must be in [0, 1]");
        assert!(
            (0.0..=1.0).contains(&activity),
            "activity must be in [0, 1]"
        );
        let dynamic = self.peak_dynamic_w() * duty * activity;
        PowerReport {
            total_w: STATIC_POWER_W + dynamic,
            static_w: STATIC_POWER_W,
            dynamic_w: dynamic,
        }
    }

    /// Energy per inference in joules when running saturated at
    /// `throughput_fps` with the given fabric `activity`.
    ///
    /// # Panics
    ///
    /// Panics if `throughput_fps` is not positive or `activity` is outside
    /// `[0, 1]`.
    #[must_use]
    pub fn energy_per_inference_j(&self, throughput_fps: f64, activity: f64) -> f64 {
        assert!(throughput_fps > 0.0, "throughput must be positive");
        self.power(1.0, activity).total_w / throughput_fps
    }
}

/// Activity factor of a flexible fabric loaded with a pruned model:
/// interpolates between full activity (unpruned) and the MAC-share of the
/// loaded model (idle channel units are clock-gated but clock/control keep
/// toggling).
///
/// # Panics
///
/// Panics if `loaded_macs > worst_case_macs` or `worst_case_macs == 0`.
#[must_use]
pub fn flexible_activity(worst_case_macs: u64, loaded_macs: u64) -> f64 {
    assert!(worst_case_macs > 0, "worst-case MACs must be nonzero");
    assert!(
        loaded_macs <= worst_case_macs,
        "loaded model exceeds worst case"
    );
    let mac_share = loaded_macs as f64 / worst_case_macs as f64;
    // Control/clock floor of 50%: gated units still see clock and control.
    0.5 + 0.5 * mac_share
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finn_like_resources() -> ResourceEstimate {
        // Approximate CNV-W2A2 FINN accelerator footprint.
        ResourceEstimate {
            lut: 67_000,
            ff: 70_000,
            bram36: 170,
            dsp: 0,
        }
    }

    #[test]
    fn saturated_finn_power_near_paper_value() {
        let p = PowerModel::new(finn_like_resources()).power(1.0, 1.0);
        // Paper Table I: original FINN ≈ 1.07 W. Accept ±15 %.
        assert!((0.9..=1.25).contains(&p.total_w), "power {}", p.total_w);
    }

    #[test]
    fn idle_power_is_static_only() {
        let p = PowerModel::new(finn_like_resources()).power(0.0, 1.0);
        assert!((p.total_w - STATIC_POWER_W).abs() < 1e-12);
        assert_eq!(p.dynamic_w, 0.0);
    }

    #[test]
    fn power_scales_linearly_with_duty() {
        let m = PowerModel::new(finn_like_resources());
        let half = m.power(0.5, 1.0);
        let full = m.power(1.0, 1.0);
        assert!((half.dynamic_w * 2.0 - full.dynamic_w).abs() < 1e-12);
    }

    #[test]
    fn energy_per_inference_decreases_with_fps() {
        let m = PowerModel::new(finn_like_resources());
        let slow = m.energy_per_inference_j(400.0, 1.0);
        let fast = m.energy_per_inference_j(800.0, 1.0);
        assert!(fast < slow);
    }

    #[test]
    fn flexible_activity_bounds() {
        assert!((flexible_activity(100, 100) - 1.0).abs() < 1e-12);
        assert!((flexible_activity(100, 0) - 0.5).abs() < 1e-12);
        let mid = flexible_activity(100, 50);
        assert!((mid - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "duty must be in [0, 1]")]
    fn rejects_bad_duty() {
        let _ = PowerModel::new(finn_like_resources()).power(1.2, 1.0);
    }

    #[test]
    #[should_panic(expected = "loaded model exceeds worst case")]
    fn rejects_oversized_load() {
        let _ = flexible_activity(10, 11);
    }

    #[test]
    fn bigger_fabric_burns_more() {
        let small = PowerModel::new(finn_like_resources());
        let big = PowerModel::new(ResourceEstimate {
            lut: 123_000,
            ff: 130_000,
            bram36: 170,
            dsp: 0,
        });
        assert!(big.power(1.0, 1.0).total_w > small.power(1.0, 1.0).total_w);
    }
}
