//! Property-based tests on the synthesis simulator.

use adaflow_dataflow::{ModuleKind, ModuleSpec};
use adaflow_hls::power::flexible_activity;
use adaflow_hls::{estimate_module, Bitstream, PowerModel, ReconfigurationModel, ResourceEstimate};
use proptest::prelude::*;
use std::time::Duration;

fn mvtu(rows: usize, cols: usize, pe: usize, simd: usize, flexible: bool) -> ModuleSpec {
    ModuleSpec {
        name: "m".into(),
        kind: ModuleKind::Mvtu {
            rows,
            cols,
            pe,
            simd,
            out_pixels: 1,
            weight_bits: 2,
            act_bits: 2,
            threshold_levels: 3,
        },
        flexible,
    }
}

proptest! {
    /// MVTU resources grow monotonically with every structural parameter.
    #[test]
    fn mvtu_resources_monotone(
        rows in 1usize..512,
        cols in 1usize..512,
        pe in 1usize..32,
        simd in 1usize..32,
    ) {
        let base = estimate_module(&mvtu(rows, cols, pe, simd, false));
        let more_rows = estimate_module(&mvtu(rows + 16, cols, pe, simd, false));
        let more_cols = estimate_module(&mvtu(rows, cols + 16, pe, simd, false));
        let more_pe = estimate_module(&mvtu(rows, cols, pe + 4, simd, false));
        prop_assert!(more_rows.lut >= base.lut);
        prop_assert!(more_cols.lut >= base.lut);
        prop_assert!(more_pe.lut >= base.lut);
        prop_assert!(more_rows.bram36 >= base.bram36);
    }

    /// The flexible template always costs more LUTs than the fixed one, and
    /// never changes BRAM.
    #[test]
    fn flexible_template_overhead(
        rows in 1usize..512,
        cols in 1usize..512,
        pe in 1usize..16,
        simd in 1usize..16,
    ) {
        let fixed = estimate_module(&mvtu(rows, cols, pe, simd, false));
        let flex = estimate_module(&mvtu(rows, cols, pe, simd, true));
        prop_assert!(flex.lut > fixed.lut);
        prop_assert_eq!(flex.bram36, fixed.bram36);
    }

    /// Power: monotone in duty and activity, bounded below by static power,
    /// and energy/inference decreases with throughput.
    #[test]
    fn power_model_invariants(
        lut in 1000u64..200_000,
        bram in 0u64..300,
        duty1 in 0.0f64..1.0,
        duty2 in 0.0f64..1.0,
        fps in 1.0f64..10_000.0,
    ) {
        let model = PowerModel::new(ResourceEstimate { lut, ff: lut, bram36: bram, dsp: 0 });
        let (lo, hi) = if duty1 <= duty2 { (duty1, duty2) } else { (duty2, duty1) };
        prop_assert!(model.power(lo, 1.0).total_w <= model.power(hi, 1.0).total_w + 1e-12);
        prop_assert!(model.power(hi, lo.min(1.0)).total_w <= model.power(hi, 1.0).total_w + 1e-12);
        prop_assert!(model.power(0.0, 1.0).total_w >= adaflow_hls::power::STATIC_POWER_W - 1e-12);
        let e1 = model.energy_per_inference_j(fps, 1.0);
        let e2 = model.energy_per_inference_j(fps * 2.0, 1.0);
        prop_assert!(e2 < e1);
    }

    /// Flexible activity is in [0.5, 1] and monotone in the loaded MACs.
    #[test]
    fn activity_bounds(worst in 1u64..1_000_000, frac1 in 0.0f64..1.0, frac2 in 0.0f64..1.0) {
        let (lo, hi) = if frac1 <= frac2 { (frac1, frac2) } else { (frac2, frac1) };
        let a_lo = flexible_activity(worst, (worst as f64 * lo) as u64);
        let a_hi = flexible_activity(worst, (worst as f64 * hi) as u64);
        prop_assert!((0.5..=1.0 + 1e-12).contains(&a_lo));
        prop_assert!(a_lo <= a_hi + 1e-12);
    }

    /// Reconfiguration time is affine in bitstream size and monotone in the
    /// partial-region fraction.
    #[test]
    fn reconfiguration_monotone(
        bytes1 in 1u64..100_000_000,
        bytes2 in 1u64..100_000_000,
        frac in 0.01f64..1.0,
    ) {
        let model = ReconfigurationModel::default();
        let (small, big) = if bytes1 <= bytes2 { (bytes1, bytes2) } else { (bytes2, bytes1) };
        let bs_small = Bitstream { accelerator: "a".into(), bytes: small };
        let bs_big = Bitstream { accelerator: "a".into(), bytes: big };
        prop_assert!(model.reconfiguration_time(&bs_small) <= model.reconfiguration_time(&bs_big));
        let partial = ReconfigurationModel::partial(frac);
        prop_assert!(partial.reconfiguration_time(&bs_big) <= model.reconfiguration_time(&bs_big));
        prop_assert!(partial.reconfiguration_time(&bs_big) >= Duration::from_millis(21));
    }
}
