//! Gateway configuration.

use adaflow_fleet::config::RouterKind;
use std::time::Duration;

/// Optional warmup traffic sent to every backend before the gateway
/// opens its front socket.
///
/// Warmup serves two purposes: it proves each backend actually serves the
/// expected model end-to-end (a connect alone proves only that a socket
/// listens), and the `service_us` fields of the responses measure each
/// backend's single-inference service floor — the number the
/// deadline-aware policy ranks backends by before live traffic has
/// calibrated them.
#[derive(Debug, Clone)]
pub struct WarmupSpec {
    /// Model id to request (must match what the backends serve).
    pub model: String,
    /// Input channels of the served model.
    pub channels: u16,
    /// Input height of the served model.
    pub height: u16,
    /// Input width of the served model.
    pub width: u16,
    /// Requests per backend; the floor is the minimum observed
    /// `service_us`.
    pub iters: u32,
}

impl WarmupSpec {
    /// Tensor elements per warmup request.
    #[must_use]
    pub fn elements(&self) -> usize {
        usize::from(self.channels) * usize::from(self.height) * usize::from(self.width)
    }
}

/// Everything the gateway needs to route: the policy, the retry budget,
/// and the health-probe state machine's timings.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Model id clients must name; empty forwards any id.
    pub model_id: String,
    /// Routing policy — the same four the fleet DES runs.
    pub router: RouterKind,
    /// Seed for the power-of-two sampling stream.
    pub seed: u64,
    /// Extra attempts after the first dispatch when a backend answers a
    /// retryable status (`queue-full`, `shutting-down`) or dies mid-flight.
    pub retry_budget: u32,
    /// Warmup traffic; `None` skips warmup (backends start healthy after a
    /// successful connect, floors calibrate from live responses).
    pub warmup: Option<WarmupSpec>,
    /// How often each backend worker sends a health probe.
    pub probe_interval: Duration,
    /// How long an outstanding probe may wait before counting as a failure.
    pub probe_timeout: Duration,
    /// Consecutive probe failures before a healthy backend is ejected.
    pub eject_after: u32,
    /// Consecutive probe successes before an ejected backend is readmitted.
    pub readmit_after: u32,
    /// Per-connection blocking-read timeout on the front socket; bounds
    /// reader shutdown latency.
    pub read_timeout: Duration,
    /// Accept-poll interval of the front listener.
    pub poll_interval: Duration,
    /// How long shutdown waits for in-flight requests before answering
    /// the stragglers with `ShuttingDown`.
    pub drain_timeout: Duration,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        Self {
            model_id: String::new(),
            router: RouterKind::DeadlineAware,
            seed: 7,
            retry_budget: 1,
            warmup: None,
            probe_interval: Duration::from_millis(200),
            probe_timeout: Duration::from_secs(1),
            eject_after: 2,
            readmit_after: 2,
            read_timeout: Duration::from_millis(50),
            poll_interval: Duration::from_millis(5),
            drain_timeout: Duration::from_secs(5),
        }
    }
}
