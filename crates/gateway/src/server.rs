//! The gateway front-end: listener, client readers, routing, retry, and
//! the end-of-run report.
//!
//! ## Threading model
//!
//! Everything runs inside one `std::thread::scope`, so a returning
//! [`Gateway::run`] structurally proves every worker joined:
//!
//! * **accept loop** (the thread that called `run`) — a nonblocking
//!   `accept` poll that spawns one reader per client connection;
//! * **client readers** — decode request frames and dispatch each to a
//!   backend chosen by the routing policy;
//! * **backend workers** — one per backend, each owning its multiplexed
//!   [`adaflow_proto::ProtoClient`] connection plus the health-probe
//!   state machine (see [`crate::backend`]).
//!
//! ## Request lifecycle
//!
//! A client request gets a gateway-wide id, is recorded in the pending
//! registry, and is forwarded with that id to the chosen backend. The
//! backend's response is correlated by id, the original client id is
//! restored, and the response is written back on the client's connection.
//! A retryable reject (`queue-full`, `shutting-down`) or a backend death
//! re-dispatches the request to a different healthy backend while the
//! retry budget and the client's deadline allow; otherwise the reject is
//! forwarded as-is. Every received request is answered exactly once —
//! [`GatewayReport::conservation_holds`] checks the ledger.

use crate::backend;
use crate::config::GatewayConfig;
use adaflow_fleet::router::{DeviceSnapshot, RoutePolicy};
use adaflow_proto::{encode_frame, Frame, FrameReader, RequestFrame, ResponseFrame, Status};
use adaflow_telemetry::{EventKind, LogHistogram, SinkHandle};
use serde::Serialize;
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};
use thiserror::Error;

/// Ids at or above this bit are gateway-internal (health probes, warmup);
/// real client requests are re-keyed to a monotone counter far below it.
pub(crate) const PROBE_BASE: u64 = 1 << 63;

/// Throughput prior (FPS) the deadline-aware policy uses for a backend
/// that has no warmup floor and no live calibration yet.
const PRIOR_FPS: f64 = 100.0;

/// Why the gateway refused to start or died.
#[derive(Debug, Error)]
pub enum GatewayError {
    /// Socket-level failure (bind, accept).
    #[error("socket error: {0}")]
    Io(#[from] std::io::Error),
    /// No backend addresses were configured.
    #[error("gateway needs at least one backend address")]
    NoBackends,
    /// Every configured backend failed to connect (or failed warmup).
    #[error("no backend of {total} passed warmup; refusing to serve")]
    NoHealthyBackends {
        /// Backends configured.
        total: usize,
    },
}

/// Write half of one client connection; response writes are serialized by
/// the mutex so readers and backend workers can interleave answers safely.
pub(crate) struct ClientConn {
    stream: Mutex<TcpStream>,
}

impl ClientConn {
    pub(crate) fn send(&self, response: &ResponseFrame) -> std::io::Result<()> {
        let bytes = encode_frame(&Frame::Response(response.clone()));
        self.stream.lock().expect("conn lock").write_all(&bytes)
    }
}

/// One routed request awaiting its backend response.
pub(crate) struct InFlight {
    /// The client connection to answer on.
    pub(crate) client: Arc<ClientConn>,
    /// The id the client used (restored before answering).
    pub(crate) client_id: u64,
    /// The forwarded frame, re-keyed to the gateway id — kept whole so a
    /// retry can resend it to another backend.
    pub(crate) frame: RequestFrame,
    /// Dispatch attempts so far (0 = first dispatch in progress).
    pub(crate) attempts: u32,
    /// Backend currently holding the request.
    pub(crate) backend: usize,
    /// When the gateway accepted the request.
    pub(crate) enqueued: Instant,
    /// When the current attempt was dispatched (RTT base).
    pub(crate) sent_at: Instant,
    /// Absolute client deadline, when the request carried a budget.
    pub(crate) deadline: Option<Instant>,
}

/// Shared per-backend routing and accounting state.
pub(crate) struct BackendState {
    pub(crate) addr: SocketAddr,
    /// Dispatch channel into the backend worker (senders are `!Sync`).
    /// Messages carry `(gid, attempts)` so the worker can recognize a
    /// stale message whose request was re-dispatched while queued.
    pub(crate) tx: Mutex<mpsc::Sender<(u64, u32)>>,
    /// Whether the backend is in the healthy rotation.
    pub(crate) healthy: AtomicBool,
    /// Requests dispatched and not yet answered — the load signal the
    /// routing policies see.
    pub(crate) in_flight: AtomicUsize,
    pub(crate) routed: AtomicU64,
    pub(crate) ok: AtomicU64,
    pub(crate) retryable: AtomicU64,
    pub(crate) ejections: AtomicU64,
    pub(crate) readmissions: AtomicU64,
    /// Warmup-measured single-inference service floor, µs (0 = unknown).
    pub(crate) floor_us: AtomicU64,
    /// Live EWMA of observed `service_us` (0 = not yet calibrated).
    pub(crate) ewma_service_us: AtomicU64,
    pub(crate) rtts: Mutex<LogHistogram>,
}

impl BackendState {
    /// Estimated serving throughput, FPS: live calibration when present,
    /// else the warmup floor, else `None` (policy falls back to its prior).
    fn service_fps(&self) -> Option<f64> {
        let us = match self.ewma_service_us.load(Ordering::Relaxed) {
            0 => self.floor_us.load(Ordering::Relaxed),
            v => v,
        };
        (us > 0).then(|| 1e6 / us as f64)
    }
}

/// State shared by the accept loop, client readers, and backend workers.
pub(crate) struct Shared {
    pub(crate) config: GatewayConfig,
    pub(crate) sink: SinkHandle,
    epoch: Instant,
    pub(crate) shutdown: AtomicBool,
    /// Set after the drain window: workers exit even with work pending.
    pub(crate) abort: AtomicBool,
    pub(crate) pending: Mutex<HashMap<u64, InFlight>>,
    next_id: AtomicU64,
    pub(crate) backends: Vec<BackendState>,
    policy: Mutex<Box<dyn RoutePolicy + Send>>,
    received: AtomicU64,
    answered_ok: AtomicU64,
    /// Reject tallies indexed by `Status::code() - 1`.
    reject_counts: [AtomicU64; 5],
    no_backend: AtomicU64,
    retries: AtomicU64,
    connections: AtomicU64,
    protocol_errors: AtomicU64,
    send_errors: AtomicU64,
    accept_errors: AtomicU64,
}

fn to_us(d: Duration) -> u32 {
    u32::try_from(d.as_micros()).unwrap_or(u32::MAX)
}

impl Shared {
    /// Telemetry seconds since the gateway's epoch.
    pub(crate) fn now_s(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    /// Picks a healthy backend (optionally excluding the one that just
    /// failed) through the configured routing policy. `None` when the
    /// rotation is empty.
    pub(crate) fn route(&self, exclude: Option<usize>) -> Option<usize> {
        let healthy: Vec<usize> = (0..self.backends.len())
            .filter(|&i| Some(i) != exclude && self.backends[i].healthy.load(Ordering::Relaxed))
            .collect();
        if healthy.is_empty() {
            return None;
        }
        let snaps: Vec<DeviceSnapshot> = healthy
            .iter()
            .map(|&i| DeviceSnapshot {
                queue_len: 0,
                in_flight: self.backends[i].in_flight.load(Ordering::Relaxed),
                busy_until_s: None,
                serving_fps: self.backends[i].service_fps(),
            })
            .collect();
        let now_s = self.now_s();
        let pick = self
            .policy
            .lock()
            .expect("policy lock")
            .route(now_s, &snaps);
        Some(healthy[pick.min(healthy.len() - 1)])
    }

    /// Records the dispatch and hands the request to `backend`'s worker.
    pub(crate) fn dispatch(&self, gid: u64, mut entry: InFlight, backend: usize) {
        entry.backend = backend;
        entry.sent_at = Instant::now();
        // The backend's admission budgets from the frame's arrival time,
        // so forward the *remaining* deadline, not the client's original
        // budget — after gateway queueing or a retry the original would
        // let the backend admit work that can no longer finish in time.
        // Clamped to ≥ 1: on the wire `deadline_us == 0` means no
        // deadline, and callers only dispatch while the deadline is live.
        if let Some(d) = entry.deadline {
            let left = d.saturating_duration_since(entry.sent_at);
            entry.frame.deadline_us = u64::try_from(left.as_micros()).unwrap_or(u64::MAX).max(1);
        }
        let b = &self.backends[backend];
        let depth = b.in_flight.fetch_add(1, Ordering::Relaxed) + 1;
        b.routed.fetch_add(1, Ordering::Relaxed);
        self.sink.emit(
            self.now_s(),
            EventKind::RequestRouted {
                id: gid,
                device_idx: backend as u32,
                queue_depth: depth as u64,
            },
        );
        let attempt = entry.attempts;
        self.pending
            .lock()
            .expect("pending lock")
            .insert(gid, entry);
        let delivered = b.tx.lock().expect("tx lock").send((gid, attempt)).is_ok();
        if !delivered {
            // Worker already gone (shutdown race): the request cannot be
            // served here; answer rather than leak it.
            b.in_flight.fetch_sub(1, Ordering::Relaxed);
            let removed = self.pending.lock().expect("pending lock").remove(&gid);
            if let Some(entry) = removed {
                self.answer_reject(&entry, Status::ShuttingDown);
            }
        }
    }

    /// Forwards a backend response (any status) back to the client,
    /// restoring the client's request id and settling the ledger.
    pub(crate) fn forward_response(&self, entry: &InFlight, mut response: ResponseFrame) {
        response.id = entry.client_id;
        let latency_s = entry.enqueued.elapsed().as_secs_f64();
        match response.status {
            Status::Ok => {
                self.answered_ok.fetch_add(1, Ordering::Relaxed);
                let deadline_met = entry.deadline.is_none_or(|d| Instant::now() <= d);
                self.sink.emit(
                    self.now_s(),
                    EventKind::RequestCompleted {
                        id: entry.frame.id,
                        latency_s,
                        deadline_met,
                    },
                );
            }
            status => {
                let slot = usize::from(status.code()) - 1;
                self.reject_counts[slot].fetch_add(1, Ordering::Relaxed);
                self.sink.emit(
                    self.now_s(),
                    EventKind::RequestShed {
                        id: entry.frame.id,
                        reason: status.label().to_string(),
                        queue_depth: 0,
                    },
                );
            }
        }
        if entry.client.send(&response).is_err() {
            self.send_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Answers the client with a gateway-synthesized reject.
    pub(crate) fn answer_reject(&self, entry: &InFlight, status: Status) {
        let response = ResponseFrame {
            id: entry.client_id,
            status,
            label: 0,
            queue_us: 0,
            service_us: 0,
            latency_us: to_us(entry.enqueued.elapsed()),
        };
        self.forward_response(entry, response);
    }

    /// Re-dispatches a failed attempt to another healthy backend, or
    /// forwards `status` to the client when the budget, the deadline, or
    /// the rotation says no.
    ///
    /// The deadline re-check is two-tier: a passed deadline always gives
    /// up, and when the retry target has a known service floor the
    /// remaining budget must still cover it — retrying a request that
    /// cannot finish in time just burns backend capacity.
    pub(crate) fn retry_or_reject(&self, gid: u64, mut entry: InFlight, status: Status) {
        entry.attempts += 1;
        let within_budget = entry.attempts <= self.config.retry_budget;
        let deadline_live = entry.deadline.is_none_or(|d| Instant::now() < d);
        if within_budget && deadline_live && !self.abort.load(Ordering::Relaxed) {
            if let Some(next) = self.route(Some(entry.backend)) {
                let floor_us = self.backends[next].floor_us.load(Ordering::Relaxed);
                let floor_fits = match (entry.deadline, floor_us) {
                    (Some(d), us) if us > 0 => Instant::now() + Duration::from_micros(us) < d,
                    _ => true,
                };
                if floor_fits {
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    self.dispatch(gid, entry, next);
                    return;
                }
            }
        }
        self.answer_reject(&entry, status);
    }
}

/// A cloneable remote control for a running gateway.
#[derive(Clone)]
pub struct GatewayHandle {
    shared: Arc<Shared>,
}

impl GatewayHandle {
    /// Initiates graceful shutdown: stop accepting, wait (bounded by the
    /// drain timeout) for in-flight requests, answer stragglers with
    /// `ShuttingDown`, join all workers.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    #[must_use]
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Whether backend `idx` is currently in the healthy rotation.
    #[must_use]
    pub fn backend_healthy(&self, idx: usize) -> bool {
        self.shared
            .backends
            .get(idx)
            .is_some_and(|b| b.healthy.load(Ordering::Relaxed))
    }

    /// How many backends are currently in the healthy rotation.
    #[must_use]
    pub fn healthy_backends(&self) -> usize {
        self.shared
            .backends
            .iter()
            .filter(|b| b.healthy.load(Ordering::Relaxed))
            .count()
    }
}

/// Reject tallies by the machine-readable status answered to the client
/// (forwarded backend rejects and gateway-synthesized ones alike).
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct GatewayRejects {
    /// `QueueFull` answers (retry budget exhausted or no alternative).
    pub queue_full: u64,
    /// `DeadlineInfeasible` answers (terminal, forwarded as-is).
    pub deadline_infeasible: u64,
    /// `ShuttingDown` answers (backend drain, backend death past the
    /// budget, empty rotation, or gateway drain).
    pub shutting_down: u64,
    /// `UnknownModel` answers.
    pub unknown_model: u64,
    /// `BadRequest` answers.
    pub bad_request: u64,
}

impl GatewayRejects {
    /// Total rejects across every reason.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.queue_full
            + self.deadline_infeasible
            + self.shutting_down
            + self.unknown_model
            + self.bad_request
    }
}

/// Per-backend accounting at gateway exit.
#[derive(Debug, Clone, Serialize)]
pub struct BackendReport {
    /// Backend address.
    pub addr: String,
    /// Dispatch attempts routed here (retries included).
    pub routed: u64,
    /// `Ok` responses received from this backend.
    pub ok: u64,
    /// Retryable rejects received from this backend.
    pub retryable: u64,
    /// Times this backend was ejected from the rotation.
    pub ejections: u64,
    /// Times this backend was readmitted after recovery.
    pub readmissions: u64,
    /// Warmup-measured single-inference service floor, seconds (0 when
    /// warmup was skipped or failed).
    pub floor_s: f64,
    /// Median gateway→backend round-trip over answered attempts, seconds.
    pub rtt_p50_s: f64,
    /// 95th percentile round-trip, seconds.
    pub rtt_p95_s: f64,
    /// 99th percentile round-trip, seconds.
    pub rtt_p99_s: f64,
    /// Whether the backend was in the healthy rotation at exit.
    pub healthy_at_exit: bool,
}

/// What one gateway run did, with the request-conservation ledger.
#[derive(Debug, Clone, Serialize)]
pub struct GatewayReport {
    /// Requests decoded on the front socket.
    pub received: u64,
    /// `Ok` responses answered to clients.
    pub answered_ok: u64,
    /// Reject answers by reason.
    pub rejects: GatewayRejects,
    /// Requests that found no healthy backend at dispatch (answered
    /// `ShuttingDown`; also counted in `rejects.shutting_down`).
    pub no_backend: u64,
    /// Re-dispatches after a retryable reject or a backend death.
    pub retries: u64,
    /// Client connections accepted.
    pub connections: u64,
    /// Undecodable or out-of-contract frames from clients.
    pub protocol_errors: u64,
    /// Response writes that failed (client hung up early).
    pub send_errors: u64,
    /// Fatal accept errors on the front socket (each one initiates
    /// shutdown, so this is 0 or 1; nonzero means the run ended early).
    pub accept_errors: u64,
    /// Wall-clock duration of the run, seconds.
    pub duration_s: f64,
    /// Routing policy display name.
    pub router: String,
    /// Per-backend accounting, in configuration order.
    pub backends: Vec<BackendReport>,
}

impl GatewayReport {
    /// Every received request was answered exactly once: received equals
    /// `Ok` answers plus rejects across every reason.
    #[must_use]
    pub fn conservation_holds(&self) -> bool {
        self.received == self.answered_ok + self.rejects.total()
    }
}

/// The live routing tier: accepts `adaflow-proto` connections and fans
/// requests out to N live backends. See the [module docs](self).
pub struct Gateway {
    listener: TcpListener,
    shared: Arc<Shared>,
    receivers: Vec<mpsc::Receiver<(u64, u32)>>,
}

impl Gateway {
    /// Binds the front socket and prepares one dispatch channel per
    /// backend. Backends are contacted by [`run`](Self::run), not here.
    ///
    /// # Errors
    ///
    /// [`GatewayError::NoBackends`] for an empty backend list, or the
    /// bind error.
    pub fn bind(
        addr: impl ToSocketAddrs,
        backends: &[SocketAddr],
        config: GatewayConfig,
        sink: SinkHandle,
    ) -> Result<Self, GatewayError> {
        if backends.is_empty() {
            return Err(GatewayError::NoBackends);
        }
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let mut states = Vec::with_capacity(backends.len());
        let mut receivers = Vec::with_capacity(backends.len());
        for &addr in backends {
            let (tx, rx) = mpsc::channel();
            receivers.push(rx);
            states.push(BackendState {
                addr,
                tx: Mutex::new(tx),
                healthy: AtomicBool::new(false),
                in_flight: AtomicUsize::new(0),
                routed: AtomicU64::new(0),
                ok: AtomicU64::new(0),
                retryable: AtomicU64::new(0),
                ejections: AtomicU64::new(0),
                readmissions: AtomicU64::new(0),
                floor_us: AtomicU64::new(0),
                ewma_service_us: AtomicU64::new(0),
                rtts: Mutex::new(LogHistogram::latency_s()),
            });
        }
        let policy = config.router.build(config.seed, PRIOR_FPS);
        let shared = Arc::new(Shared {
            config,
            sink,
            epoch: Instant::now(),
            shutdown: AtomicBool::new(false),
            abort: AtomicBool::new(false),
            pending: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            backends: states,
            policy: Mutex::new(policy),
            received: AtomicU64::new(0),
            answered_ok: AtomicU64::new(0),
            reject_counts: std::array::from_fn(|_| AtomicU64::new(0)),
            no_backend: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            send_errors: AtomicU64::new(0),
            accept_errors: AtomicU64::new(0),
        });
        Ok(Self {
            listener,
            shared,
            receivers,
        })
    }

    /// The front socket's bound address.
    ///
    /// # Errors
    ///
    /// The socket's address lookup error.
    pub fn local_addr(&self) -> Result<SocketAddr, GatewayError> {
        Ok(self.listener.local_addr()?)
    }

    /// A remote control usable from other threads.
    #[must_use]
    pub fn handle(&self) -> GatewayHandle {
        GatewayHandle {
            shared: self.shared.clone(),
        }
    }

    /// Warms up the backends, serves until [`GatewayHandle::shutdown`],
    /// drains, and returns the accounting.
    ///
    /// # Errors
    ///
    /// [`GatewayError::NoHealthyBackends`] when not a single backend
    /// passes warmup — a gateway with nowhere to route is an outage, not
    /// a server.
    pub fn run(mut self) -> Result<GatewayReport, GatewayError> {
        let start = Instant::now();
        // Warmup, sequential and deterministic: connect every backend and
        // (when configured) measure its service floor with real requests.
        let mut clients = Vec::with_capacity(self.shared.backends.len());
        for idx in 0..self.shared.backends.len() {
            match backend::warm_connect(&self.shared, idx) {
                Ok(client) => {
                    self.shared.backends[idx]
                        .healthy
                        .store(true, Ordering::SeqCst);
                    clients.push(Some(client));
                }
                Err(_) => clients.push(None),
            }
        }
        let healthy = self
            .shared
            .backends
            .iter()
            .filter(|b| b.healthy.load(Ordering::SeqCst))
            .count();
        if healthy == 0 {
            return Err(GatewayError::NoHealthyBackends {
                total: self.shared.backends.len(),
            });
        }

        let shared = &self.shared;
        let receivers = std::mem::take(&mut self.receivers);
        std::thread::scope(|scope| {
            for (idx, (rx, client)) in receivers.into_iter().zip(clients).enumerate() {
                scope.spawn(move || backend::worker(shared, idx, &rx, client));
            }
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        shared.connections.fetch_add(1, Ordering::Relaxed);
                        scope.spawn(move || reader_loop(shared, stream));
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(shared.config.poll_interval);
                    }
                    Err(_) => {
                        // A dead front socket ends the run, but it must
                        // end it *gracefully*: client readers and backend
                        // workers exit on the shutdown flag, so without
                        // setting it the scope would wedge until every
                        // client voluntarily disconnected.
                        shared.accept_errors.fetch_add(1, Ordering::Relaxed);
                        shared.shutdown.store(true, Ordering::SeqCst);
                        break;
                    }
                }
            }
            // Graceful drain: give in-flight requests the drain window,
            // then abort the workers. Client readers exit on the shutdown
            // flag at their next read timeout.
            let drain_start = Instant::now();
            while drain_start.elapsed() < shared.config.drain_timeout {
                if shared.pending.lock().expect("pending lock").is_empty() {
                    break;
                }
                std::thread::sleep(shared.config.poll_interval);
            }
            shared.abort.store(true, Ordering::SeqCst);
        });

        // Stragglers that outlived the drain window get an answer — no
        // silently dropped requests.
        let leftovers: Vec<InFlight> = {
            let mut pending = shared.pending.lock().expect("pending lock");
            pending.drain().map(|(_, entry)| entry).collect()
        };
        for entry in leftovers {
            shared.answer_reject(&entry, Status::ShuttingDown);
        }

        let duration_s = start.elapsed().as_secs_f64();
        let reject_at = |status: Status| {
            shared.reject_counts[usize::from(status.code()) - 1].load(Ordering::SeqCst)
        };
        Ok(GatewayReport {
            received: shared.received.load(Ordering::SeqCst),
            answered_ok: shared.answered_ok.load(Ordering::SeqCst),
            rejects: GatewayRejects {
                queue_full: reject_at(Status::QueueFull),
                deadline_infeasible: reject_at(Status::DeadlineInfeasible),
                shutting_down: reject_at(Status::ShuttingDown),
                unknown_model: reject_at(Status::UnknownModel),
                bad_request: reject_at(Status::BadRequest),
            },
            no_backend: shared.no_backend.load(Ordering::SeqCst),
            retries: shared.retries.load(Ordering::SeqCst),
            connections: shared.connections.load(Ordering::SeqCst),
            protocol_errors: shared.protocol_errors.load(Ordering::SeqCst),
            send_errors: shared.send_errors.load(Ordering::SeqCst),
            accept_errors: shared.accept_errors.load(Ordering::SeqCst),
            duration_s,
            router: shared.config.router.name().to_string(),
            backends: shared
                .backends
                .iter()
                .map(|b| {
                    let rtts = b.rtts.lock().expect("rtt lock");
                    BackendReport {
                        addr: b.addr.to_string(),
                        routed: b.routed.load(Ordering::SeqCst),
                        ok: b.ok.load(Ordering::SeqCst),
                        retryable: b.retryable.load(Ordering::SeqCst),
                        ejections: b.ejections.load(Ordering::SeqCst),
                        readmissions: b.readmissions.load(Ordering::SeqCst),
                        floor_s: b.floor_us.load(Ordering::SeqCst) as f64 / 1e6,
                        rtt_p50_s: rtts.p50(),
                        rtt_p95_s: rtts.quantile(0.95),
                        rtt_p99_s: rtts.quantile(0.99),
                        healthy_at_exit: b.healthy.load(Ordering::SeqCst),
                    }
                })
                .collect(),
        })
    }
}

fn reader_loop(shared: &Shared, stream: TcpStream) {
    if stream
        .set_read_timeout(Some(shared.config.read_timeout))
        .is_err()
    {
        return;
    }
    stream.set_nodelay(true).ok();
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let conn = Arc::new(ClientConn {
        stream: Mutex::new(write_half),
    });
    let mut stream = stream;
    let mut frames = FrameReader::new();
    let mut buf = [0u8; 16 * 1024];
    'conn: loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                frames.feed(&buf[..n]);
                loop {
                    match frames.next_frame() {
                        Ok(Some(Frame::Request(request))) => {
                            handle_request(shared, &conn, request);
                        }
                        Ok(Some(Frame::Response(_))) | Err(_) => {
                            // Clients send requests; anything else means
                            // the stream is not speaking our protocol.
                            shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                            break 'conn;
                        }
                        Ok(None) => break,
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(_) => break,
        }
    }
}

/// Re-keys one decoded client request to a gateway id and dispatches it.
fn handle_request(shared: &Shared, conn: &Arc<ClientConn>, request: RequestFrame) {
    shared.received.fetch_add(1, Ordering::Relaxed);
    let client_id = request.id;
    let deadline = (request.deadline_us > 0)
        .then(|| Instant::now() + Duration::from_micros(request.deadline_us));
    let mut frame = request;
    let gid = shared.next_id.fetch_add(1, Ordering::Relaxed);
    frame.id = gid;
    let entry = InFlight {
        client: conn.clone(),
        client_id,
        frame,
        attempts: 0,
        backend: 0,
        enqueued: Instant::now(),
        sent_at: Instant::now(),
        deadline,
    };
    if !shared.config.model_id.is_empty() && entry.frame.model != shared.config.model_id {
        shared.answer_reject(&entry, Status::UnknownModel);
        return;
    }
    match shared.route(None) {
        Some(backend) => shared.dispatch(gid, entry, backend),
        None => {
            shared.no_backend.fetch_add(1, Ordering::Relaxed);
            shared.answer_reject(&entry, Status::ShuttingDown);
        }
    }
}
