//! `adaflow-gateway` — a live L7 routing tier over multiple AdaFlow
//! serving backends.
//!
//! The gateway accepts `adaflow-proto` connections on one front socket
//! and fans requests out to N live `adaflow-net` backends over
//! persistent, multiplexed connections (the protocol's request ids make
//! pipelining and out-of-order completion safe). It reuses the fleet
//! simulator's routing policies verbatim — round-robin, least-loaded,
//! power-of-two-choices, and deadline-aware over warmup-measured service
//! floors — so the DES's predicted hit-rates and the live gateway's
//! measured ones are directly comparable.
//!
//! Beyond routing, the gateway owns the operational loop the paper's
//! multi-FPGA deployments need: per-backend health probes with ejection
//! and readmission, bounded retry of retryable rejects onto a different
//! backend, graceful drain on shutdown, and per-backend telemetry
//! (routed counts, RTT histograms, ejection events) through the standard
//! trace/metrics pipeline.
//!
//! The crate is std-only and model-free: it moves opaque tensors and
//! understands only the wire protocol, never the graph being served.
//!
//! ```no_run
//! use adaflow_gateway::{Gateway, GatewayConfig};
//! use adaflow_telemetry::SinkHandle;
//!
//! let backends = ["127.0.0.1:7000".parse().unwrap(), "127.0.0.1:7001".parse().unwrap()];
//! let gateway = Gateway::bind(
//!     "127.0.0.1:0",
//!     &backends,
//!     GatewayConfig::default(),
//!     SinkHandle::null(),
//! ).unwrap();
//! let handle = gateway.handle();
//! std::thread::spawn(move || { /* ... later: */ handle.shutdown(); });
//! let report = gateway.run().unwrap();
//! assert!(report.conservation_holds());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod config;
pub mod server;

pub use config::{GatewayConfig, WarmupSpec};
pub use server::{
    BackendReport, Gateway, GatewayError, GatewayHandle, GatewayRejects, GatewayReport,
};
