//! Backend legs: one worker thread per backend owning its multiplexed
//! connection, plus the health-probe state machine.
//!
//! ## Health model
//!
//! A backend is **healthy** (in the routing rotation) or **ejected**.
//! Two signals move it between the states:
//!
//! * **connection loss** — a failed send, a socket error, EOF, or
//!   protocol garbage ejects the backend immediately and fails its
//!   in-flight requests over to the retry path;
//! * **probes** — every `probe_interval` the worker sends a zero-shaped
//!   request with a reserved id. The backend answers it instantly from
//!   admission (`bad-request` — by construction it never enters the
//!   serving pipeline or the arrival ledger), so *any* reply proves the
//!   whole stack is responsive. `eject_after` consecutive probe timeouts
//!   eject a healthy backend; `readmit_after` consecutive successes
//!   readmit an ejected one. Both transitions emit telemetry events.
//!
//! Ejection is advisory for requests already dispatched: if the socket is
//! still alive, outstanding responses are still accepted and forwarded.

use crate::config::WarmupSpec;
use crate::server::{Shared, PROBE_BASE};
use adaflow_proto::{ProtoClient, RequestFrame, ResponseFrame, Status};
use adaflow_telemetry::EventKind;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, TryRecvError};
use std::time::{Duration, Instant};

/// Read-timeout window pacing the worker's receive poll.
const POLL_TIMEOUT: Duration = Duration::from_millis(2);

/// EWMA weight of history when folding in a new `service_us` sample
/// (new estimate = (7·old + sample) / 8).
const EWMA_OLD_WEIGHT: u64 = 7;

/// Connects to backend `idx` and, when warmup is configured, measures its
/// single-inference service floor with real requests. Any failure —
/// connect refused, warmup request lost, non-`Ok` warmup status — leaves
/// the backend out of the initial rotation.
pub(crate) fn warm_connect(shared: &Shared, idx: usize) -> Result<ProtoClient, ()> {
    let state = &shared.backends[idx];
    let mut client = ProtoClient::connect(state.addr).map_err(|_| ())?;
    client
        .set_read_timeout(Some(POLL_TIMEOUT))
        .map_err(|_| ())?;
    if let Some(spec) = &shared.config.warmup {
        // First inference may compile/populate caches: give it real time.
        let wait = shared.config.probe_timeout.max(Duration::from_secs(5));
        let mut floor = u64::MAX;
        for i in 0..spec.iters {
            let id = PROBE_BASE | u64::from(i);
            client.send(&warmup_frame(spec, id)).map_err(|_| ())?;
            match client.recv_id(id, wait) {
                Ok(Some(r)) if r.status.is_ok() => {
                    floor = floor.min(u64::from(r.service_us).max(1));
                }
                _ => return Err(()),
            }
        }
        if floor != u64::MAX {
            state.floor_us.store(floor, Ordering::SeqCst);
        }
    }
    Ok(client)
}

fn warmup_frame(spec: &WarmupSpec, id: u64) -> RequestFrame {
    RequestFrame {
        id,
        deadline_us: 0,
        model: spec.model.clone(),
        channels: spec.channels,
        height: spec.height,
        width: spec.width,
        data: vec![0; spec.elements()],
    }
}

/// The probe frame: zero-shaped, empty payload. The backend's admission
/// check rejects it (`bad-request`, or `unknown-model` when the backend
/// pins a different model id) without touching its arrival statistics,
/// so probes are invisible to the backend's conservation ledger while
/// still exercising socket, decoder, and admission end-to-end.
fn probe_frame(model: &str, id: u64) -> RequestFrame {
    RequestFrame {
        id,
        deadline_us: 0,
        model: model.to_string(),
        channels: 0,
        height: 0,
        width: 0,
        data: Vec::new(),
    }
}

/// The probe state machine for one backend (see the [module docs](self)).
struct Probes {
    next_send: Instant,
    /// The probe on the wire, if any: `(id, sent_at)`.
    outstanding: Option<(u64, Instant)>,
    consecutive_failures: u32,
    consecutive_successes: u32,
    /// When the backend left the rotation (for the readmission event's
    /// downtime measurement).
    down_since: Option<Instant>,
    next_id: u64,
}

impl Probes {
    fn new() -> Self {
        Self {
            next_send: Instant::now(),
            outstanding: None,
            consecutive_failures: 0,
            consecutive_successes: 0,
            down_since: None,
            next_id: 1 << 20,
        }
    }

    /// Expires a timed-out probe and sends the next one when due.
    /// Returns `false` when the probe send failed (connection is dead).
    fn tick(&mut self, shared: &Shared, idx: usize, conn: &mut Option<ProtoClient>) -> bool {
        if let Some((_, sent_at)) = self.outstanding {
            if sent_at.elapsed() > shared.config.probe_timeout {
                self.outstanding = None;
                self.consecutive_successes = 0;
                self.consecutive_failures += 1;
                if self.consecutive_failures >= shared.config.eject_after {
                    self.mark_down(shared, idx, "probe-timeout");
                }
            }
        }
        if self.outstanding.is_none() && Instant::now() >= self.next_send {
            if let Some(client) = conn.as_mut() {
                let id = PROBE_BASE | self.next_id;
                self.next_id += 1;
                let model = shared
                    .config
                    .warmup
                    .as_ref()
                    .map_or(shared.config.model_id.as_str(), |w| w.model.as_str());
                if client.send(&probe_frame(model, id)).is_err() {
                    return false;
                }
                self.outstanding = Some((id, Instant::now()));
                self.next_send = Instant::now() + shared.config.probe_interval;
            }
        }
        true
    }

    /// Any response carrying the probe bit is a success — a reject from
    /// admission proves responsiveness exactly as well as an `Ok` would.
    fn on_probe_response(&mut self, shared: &Shared, idx: usize) {
        self.outstanding = None;
        self.consecutive_failures = 0;
        self.consecutive_successes += 1;
        let state = &shared.backends[idx];
        if !state.healthy.load(Ordering::SeqCst)
            && self.consecutive_successes >= shared.config.readmit_after
            && !state.healthy.swap(true, Ordering::SeqCst)
        {
            state.readmissions.fetch_add(1, Ordering::Relaxed);
            let downtime_s = self
                .down_since
                .take()
                .map_or(0.0, |t| t.elapsed().as_secs_f64());
            shared.sink.emit(
                shared.now_s(),
                EventKind::BackendReadmitted {
                    backend: idx as u32,
                    downtime_s,
                },
            );
        }
    }

    /// Ejects the backend from the rotation (idempotent).
    fn mark_down(&mut self, shared: &Shared, idx: usize, reason: &str) {
        let state = &shared.backends[idx];
        if state.healthy.swap(false, Ordering::SeqCst) {
            state.ejections.fetch_add(1, Ordering::Relaxed);
            self.down_since = Some(Instant::now());
            self.consecutive_successes = 0;
            shared.sink.emit(
                shared.now_s(),
                EventKind::BackendEjected {
                    backend: idx as u32,
                    reason: reason.to_string(),
                },
            );
        } else if self.down_since.is_none() {
            self.down_since = Some(Instant::now());
        }
    }
}

/// The per-backend worker: drains the dispatch channel onto the
/// connection, polls responses, reconnects after loss, and runs the probe
/// state machine. Exits when the gateway aborts, or on graceful shutdown
/// once this backend has nothing in flight.
pub(crate) fn worker(
    shared: &Shared,
    idx: usize,
    rx: &Receiver<(u64, u32)>,
    initial: Option<ProtoClient>,
) {
    let state = &shared.backends[idx];
    let mut conn = initial;
    let mut probes = Probes::new();
    if conn.is_none() {
        // Warmup failed: start ejected, with the downtime clock running.
        probes.mark_down(shared, idx, "warmup-failed");
    }
    let mut next_reconnect = Instant::now();
    loop {
        if shared.abort.load(Ordering::SeqCst) {
            break;
        }
        // Drain dispatches. `in_flight` is raised before the channel send,
        // so `in_flight == 0` under shutdown implies the channel is empty.
        //
        // A channel message is only a hint: the connection-loss sweep may
        // have re-dispatched the gid to another backend (or a later retry
        // re-dispatched it back here) while it was still queued. The
        // pending entry's (backend, attempts) pair is the ownership
        // record — a message that does not match it is stale and must be
        // dropped, or this worker would settle (and double-decrement the
        // in-flight of) a request now owned by someone else, or send a
        // duplicate frame.
        loop {
            match rx.try_recv() {
                Ok((gid, attempt)) => {
                    let frame = {
                        let pending = shared.pending.lock().expect("pending lock");
                        match pending.get(&gid) {
                            Some(e) if e.backend == idx && e.attempts == attempt => {
                                Some(e.frame.clone())
                            }
                            _ => None, // settled or re-owned: stale message
                        }
                    };
                    let Some(frame) = frame else { continue };
                    match conn.as_mut() {
                        Some(client) => {
                            if client.send(&frame).is_err() {
                                conn = None;
                                // The failed request is still pending on
                                // this backend; the sweep retries it.
                                on_connection_lost(shared, idx, &mut probes, "send-failed");
                            }
                        }
                        None => fail_one(shared, idx, gid, attempt),
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => return,
            }
        }
        // Poll responses (the read timeout paces the loop).
        match conn.as_mut() {
            Some(client) => loop {
                match client.try_recv() {
                    Ok(Some(response)) => handle_response(shared, idx, &mut probes, response),
                    Ok(None) => break,
                    Err(_) => {
                        conn = None;
                        on_connection_lost(shared, idx, &mut probes, "connection-lost");
                        break;
                    }
                }
            },
            None => {
                if Instant::now() >= next_reconnect {
                    next_reconnect = Instant::now() + shared.config.probe_interval;
                    if let Ok(client) = ProtoClient::connect(state.addr) {
                        if client.set_read_timeout(Some(POLL_TIMEOUT)).is_ok() {
                            // Reconnected, but not yet readmitted: probes
                            // must succeed `readmit_after` times first.
                            conn = Some(client);
                        }
                    }
                }
                std::thread::sleep(POLL_TIMEOUT);
            }
        }
        if !probes.tick(shared, idx, &mut conn) {
            conn = None;
            on_connection_lost(shared, idx, &mut probes, "probe-send-failed");
        }
        if shared.shutdown.load(Ordering::SeqCst) && state.in_flight.load(Ordering::SeqCst) == 0 {
            break;
        }
    }
}

/// Settles one response from backend `idx`: probe bookkeeping, live
/// service-time calibration, then forward or retry by status.
fn handle_response(shared: &Shared, idx: usize, probes: &mut Probes, response: ResponseFrame) {
    if response.id & PROBE_BASE != 0 {
        probes.on_probe_response(shared, idx);
        return;
    }
    let entry = shared
        .pending
        .lock()
        .expect("pending lock")
        .remove(&response.id);
    // A missing entry means the request was already settled (e.g. the
    // drain answered it); drop the late response.
    let Some(entry) = entry else { return };
    let state = &shared.backends[idx];
    state.in_flight.fetch_sub(1, Ordering::Relaxed);
    state
        .rtts
        .lock()
        .expect("rtt lock")
        .record(entry.sent_at.elapsed().as_secs_f64());
    match response.status {
        Status::Ok => {
            state.ok.fetch_add(1, Ordering::Relaxed);
            let sample = u64::from(response.service_us).max(1);
            let old = state.ewma_service_us.load(Ordering::Relaxed);
            let next = if old == 0 {
                sample
            } else {
                (EWMA_OLD_WEIGHT * old + sample) / (EWMA_OLD_WEIGHT + 1)
            };
            state.ewma_service_us.store(next.max(1), Ordering::Relaxed);
            shared.forward_response(&entry, response);
        }
        status if status.is_retryable() => {
            state.retryable.fetch_add(1, Ordering::Relaxed);
            shared.retry_or_reject(response.id, entry, status);
        }
        _ => shared.forward_response(&entry, response),
    }
}

/// Fails one dispatched request over to the retry path (used when the
/// backend has no live connection to even attempt the send on). Removes
/// the pending entry only when this worker still owns that exact attempt
/// — the connection-loss sweep may have re-owned the gid meanwhile.
fn fail_one(shared: &Shared, idx: usize, gid: u64, attempt: u32) {
    let entry = {
        let mut pending = shared.pending.lock().expect("pending lock");
        match pending.get(&gid) {
            Some(e) if e.backend == idx && e.attempts == attempt => pending.remove(&gid),
            _ => None,
        }
    };
    let Some(entry) = entry else { return };
    shared.backends[idx]
        .in_flight
        .fetch_sub(1, Ordering::Relaxed);
    shared.retry_or_reject(gid, entry, Status::ShuttingDown);
}

/// Handles a dead connection: eject the backend, then fail every request
/// it was holding over to the retry path. Entries are collected under the
/// pending lock but retried after releasing it — `retry_or_reject`
/// re-enters the pending registry on re-dispatch.
fn on_connection_lost(shared: &Shared, idx: usize, probes: &mut Probes, reason: &str) {
    probes.mark_down(shared, idx, reason);
    probes.outstanding = None;
    let orphans: Vec<(u64, crate::server::InFlight)> = {
        let mut pending = shared.pending.lock().expect("pending lock");
        let ids: Vec<u64> = pending
            .iter()
            .filter(|(_, e)| e.backend == idx)
            .map(|(&gid, _)| gid)
            .collect();
        ids.into_iter()
            .filter_map(|gid| pending.remove(&gid).map(|e| (gid, e)))
            .collect()
    };
    let state = &shared.backends[idx];
    for (gid, entry) in orphans {
        state.in_flight.fetch_sub(1, Ordering::Relaxed);
        shared.retry_or_reject(gid, entry, Status::ShuttingDown);
    }
}
