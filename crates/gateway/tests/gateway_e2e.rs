//! End-to-end gateway tests over real localhost sockets: closed-loop
//! serving through the routing tier, deterministic kill-one-backend
//! failover with ejection and readmission, retryable-reject failover,
//! the no-healthy-backend degraded mode, and typed startup errors.
//!
//! Backends and the gateway run inside `std::thread::scope`, so a
//! returning test proves every worker joined.

use adaflow_gateway::{Gateway, GatewayConfig, GatewayReport, WarmupSpec};
use adaflow_model::{topology, QuantSpec, TensorShape};
use adaflow_net::{LiveConfig, LiveServer, LoadConfig};
use adaflow_proto::{
    encode_frame, Frame, FrameReader, ProtoClient, RequestFrame, ResponseFrame, Status,
};
use adaflow_serve::ServeConfig;
use adaflow_telemetry::{EventKind, SinkHandle};
use std::io::{Read, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

fn tiny_graph() -> adaflow_model::CnnGraph {
    topology::tiny(QuantSpec::w2a2(), 10).expect("builds")
}

fn backend_config(queue_capacity: usize) -> LiveConfig {
    LiveConfig {
        serve: ServeConfig {
            max_batch: 4,
            max_wait_s: 0.001,
            queue_capacity,
            ..ServeConfig::default()
        },
        ..LiveConfig::default()
    }
}

/// Gateway timings tuned for tests: probes every 25 ms, eject after two
/// missed 200 ms windows, readmit after two successes.
fn fast_gateway(router: &str) -> GatewayConfig {
    GatewayConfig {
        router: adaflow_fleet::config::RouterKind::parse(router).expect("router kind"),
        probe_interval: Duration::from_millis(25),
        probe_timeout: Duration::from_millis(200),
        eject_after: 2,
        readmit_after: 2,
        drain_timeout: Duration::from_secs(2),
        ..GatewayConfig::default()
    }
}

fn warmup_spec(shape: TensorShape) -> WarmupSpec {
    WarmupSpec {
        model: String::new(),
        channels: shape.channels as u16,
        height: shape.height as u16,
        width: shape.width as u16,
        iters: 2,
    }
}

fn request(id: u64, shape: TensorShape) -> RequestFrame {
    RequestFrame {
        id,
        deadline_us: 0,
        model: String::new(),
        channels: shape.channels as u16,
        height: shape.height as u16,
        width: shape.width as u16,
        data: (0..shape.elements()).map(|i| i as u8).collect(),
    }
}

/// Polls `cond` until it holds or `timeout` passes.
fn wait_for(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

#[test]
fn closed_loop_through_gateway_is_conserved_and_spread() {
    let graph = tiny_graph();
    let shape = graph.input_shape();
    let b0 = LiveServer::bind(
        "127.0.0.1:0",
        &graph,
        backend_config(16),
        SinkHandle::null(),
    )
    .expect("binds");
    let b1 = LiveServer::bind(
        "127.0.0.1:0",
        &graph,
        backend_config(16),
        SinkHandle::null(),
    )
    .expect("binds");
    let backends = [
        b0.local_addr().expect("addr"),
        b1.local_addr().expect("addr"),
    ];
    let (h0, h1) = (b0.handle(), b1.handle());

    let mut config = fast_gateway("rr");
    config.warmup = Some(warmup_spec(shape));
    let (sink, recorder) = SinkHandle::recorder(65_536);
    let gateway = Gateway::bind("127.0.0.1:0", &backends, config, sink).expect("binds");
    let front = gateway.local_addr().expect("addr");
    let gh = gateway.handle();

    let (report, summary) = std::thread::scope(|scope| {
        let bt0 = scope.spawn(|| b0.run());
        let bt1 = scope.spawn(|| b1.run());
        let gt = scope.spawn(|| gateway.run());

        let summary = adaflow_net::loadgen::run_load(&LoadConfig::closed(front, "", shape, 24));

        gh.shutdown();
        let report = gt.join().expect("no panic").expect("gateway serves");
        h0.shutdown();
        h1.shutdown();
        bt0.join().expect("no panic").expect("backend serves");
        bt1.join().expect("no panic").expect("backend serves");
        (report, summary)
    });

    assert_eq!(summary.sent, 24);
    assert_eq!(summary.ok, 24, "{summary:?}");
    assert_eq!(summary.protocol_errors, 0);
    assert_eq!(summary.missing, 0);

    assert_eq!(report.received, 24);
    assert_eq!(report.answered_ok, 24);
    assert!(report.conservation_holds(), "{report:?}");
    assert_eq!(report.protocol_errors, 0);
    assert_eq!(report.send_errors, 0);
    assert_eq!(report.router, "round-robin");
    // Round-robin over two healthy backends: both must carry traffic,
    // and exactly the offered 24 dispatches happened (no retries needed).
    assert_eq!(report.backends.len(), 2);
    assert_eq!(report.retries, 0);
    assert_eq!(report.backends[0].routed + report.backends[1].routed, 24);
    assert_eq!(report.backends[0].routed, 12, "{report:?}");
    assert_eq!(report.backends[1].routed, 12, "{report:?}");
    for b in &report.backends {
        assert!(b.healthy_at_exit);
        assert_eq!(b.ejections, 0);
        assert!(b.floor_s > 0.0, "warmup measured a service floor");
        assert!(b.rtt_p50_s > 0.0, "RTT histogram recorded samples");
    }

    // Telemetry flowed through the standard pipeline: one routing event
    // per dispatch, one completion per Ok answer.
    let events = recorder.drain();
    let routed = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::RequestRouted { .. }))
        .count();
    let completed = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::RequestCompleted { .. }))
        .count();
    assert_eq!(routed, 24);
    assert_eq!(completed, 24);
}

#[test]
fn killed_backend_is_ejected_then_readmitted_after_restart() {
    let graph = tiny_graph();
    let shape = graph.input_shape();
    let b0 = LiveServer::bind(
        "127.0.0.1:0",
        &graph,
        backend_config(16),
        SinkHandle::null(),
    )
    .expect("binds");
    let b1 = LiveServer::bind(
        "127.0.0.1:0",
        &graph,
        backend_config(16),
        SinkHandle::null(),
    )
    .expect("binds");
    let addr0 = b0.local_addr().expect("addr");
    let backends = [addr0, b1.local_addr().expect("addr")];
    let (h0, h1) = (b0.handle(), b1.handle());

    let (sink, recorder) = SinkHandle::recorder(65_536);
    let gateway = Gateway::bind("127.0.0.1:0", &backends, fast_gateway("rr"), sink).expect("binds");
    let front = gateway.local_addr().expect("addr");
    let gh = gateway.handle();

    let report = std::thread::scope(|scope| {
        let bt0 = scope.spawn(|| b0.run());
        let bt1 = scope.spawn(|| b1.run());
        let gt = scope.spawn(|| gateway.run());

        // Phase 1: both backends healthy, everything serves.
        let s1 = adaflow_net::loadgen::run_load(&LoadConfig::closed(front, "", shape, 8));
        assert_eq!(s1.ok, 8, "{s1:?}");

        // Phase 2: kill backend 0 and wait for the probes to eject it.
        h0.shutdown();
        bt0.join().expect("no panic").expect("backend serves");
        assert!(
            wait_for(Duration::from_secs(10), || gh.healthy_backends() == 1),
            "dead backend was never ejected"
        );
        assert!(!gh.backend_healthy(0));

        // Phase 3: the gateway keeps serving on the survivor.
        let s2 = adaflow_net::loadgen::run_load(&LoadConfig::closed(front, "", shape, 8));
        assert_eq!(s2.ok, 8, "one backend down must not drop traffic: {s2:?}");

        // Phase 4: restart backend 0 on its old address (std sets
        // SO_REUSEADDR on Unix) and wait for readmission.
        let b0b = LiveServer::bind(addr0, &graph, backend_config(16), SinkHandle::null())
            .expect("rebinds old address");
        let h0b = b0b.handle();
        let bt0b = scope.spawn(|| b0b.run());
        assert!(
            wait_for(Duration::from_secs(10), || gh.backend_healthy(0)),
            "restarted backend was never readmitted"
        );

        // Phase 5: full rotation again.
        let s3 = adaflow_net::loadgen::run_load(&LoadConfig::closed(front, "", shape, 8));
        assert_eq!(s3.ok, 8, "{s3:?}");

        gh.shutdown();
        let report = gt.join().expect("no panic").expect("gateway serves");
        h0b.shutdown();
        h1.shutdown();
        bt0b.join().expect("no panic").expect("backend serves");
        bt1.join().expect("no panic").expect("backend serves");
        report
    });

    assert!(report.conservation_holds(), "{report:?}");
    assert_eq!(report.received, 24);
    assert_eq!(report.answered_ok, 24, "{report:?}");
    assert!(report.backends[0].ejections >= 1, "{report:?}");
    assert!(report.backends[0].readmissions >= 1, "{report:?}");
    assert!(report.backends[0].healthy_at_exit);
    assert_eq!(report.backends[1].ejections, 0);

    // The health transitions are in the telemetry stream too.
    let events = recorder.drain();
    let ejected = events
        .iter()
        .any(|e| matches!(e.kind, EventKind::BackendEjected { backend: 0, .. }));
    let readmitted = events.iter().any(
        |e| matches!(e.kind, EventKind::BackendReadmitted { backend: 0, downtime_s } if downtime_s > 0.0),
    );
    assert!(ejected, "ejection event missing");
    assert!(readmitted, "readmission event missing");
}

/// A fake backend that answers every request — probes included — with
/// `QueueFull`. It stays "healthy" (probes get answers) while never
/// serving, which is exactly the shape that exercises the retry path.
/// The `deadline_us` of every non-probe request frame it sees is pushed
/// into `deadlines`, so tests can observe the budget the gateway forwards.
fn always_queue_full(listener: &TcpListener, stop: &AtomicBool, deadlines: &Mutex<Vec<u64>>) {
    listener.set_nonblocking(true).expect("nonblocking");
    let mut conns: Vec<(std::net::TcpStream, FrameReader)> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        if let Ok((stream, _)) = listener.accept() {
            stream
                .set_read_timeout(Some(Duration::from_millis(5)))
                .expect("timeout");
            conns.push((stream, FrameReader::new()));
        }
        let mut buf = [0u8; 4096];
        conns.retain_mut(|(stream, frames)| {
            match stream.read(&mut buf) {
                Ok(0) => return false,
                Ok(n) => frames.feed(&buf[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(_) => return false,
            }
            while let Ok(Some(Frame::Request(r))) = frames.next_frame() {
                if r.id & (1 << 63) == 0 {
                    deadlines.lock().expect("deadline lock").push(r.deadline_us);
                }
                let response = ResponseFrame {
                    id: r.id,
                    status: Status::QueueFull,
                    label: 0,
                    queue_us: 0,
                    service_us: 0,
                    latency_us: 1,
                };
                if stream
                    .write_all(&encode_frame(&Frame::Response(response)))
                    .is_err()
                {
                    return false;
                }
            }
            true
        });
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn retryable_reject_fails_over_to_another_backend() {
    let graph = tiny_graph();
    let shape = graph.input_shape();
    let real = LiveServer::bind(
        "127.0.0.1:0",
        &graph,
        backend_config(32),
        SinkHandle::null(),
    )
    .expect("binds");
    let fake_listener = TcpListener::bind("127.0.0.1:0").expect("binds");
    // Backend 0 is the pathological one: round-robin guarantees half the
    // requests hit it first and must fail over.
    let backends = [
        fake_listener.local_addr().expect("addr"),
        real.local_addr().expect("addr"),
    ];
    let hr = real.handle();
    let stop = AtomicBool::new(false);

    let gateway = Gateway::bind(
        "127.0.0.1:0",
        &backends,
        fast_gateway("rr"),
        SinkHandle::null(),
    )
    .expect("binds");
    let front = gateway.local_addr().expect("addr");
    let gh = gateway.handle();

    let deadlines = Mutex::new(Vec::new());
    let (report, summary) = std::thread::scope(|scope| {
        let ft = scope.spawn(|| always_queue_full(&fake_listener, &stop, &deadlines));
        let rt = scope.spawn(|| real.run());
        let gt = scope.spawn(|| gateway.run());

        let summary = adaflow_net::loadgen::run_load(&LoadConfig::closed(front, "", shape, 16));

        gh.shutdown();
        let report = gt.join().expect("no panic").expect("gateway serves");
        hr.shutdown();
        rt.join().expect("no panic").expect("backend serves");
        stop.store(true, Ordering::SeqCst);
        ft.join().expect("no panic");
        (report, summary)
    });

    // Every request ends Ok: the ones that hit the fake first were
    // retried onto the real backend within the budget.
    assert_eq!(summary.ok, 16, "{summary:?}");
    assert_eq!(summary.rejected(), 0);
    assert!(report.conservation_holds(), "{report:?}");
    assert_eq!(report.answered_ok, 16);
    assert!(report.retries >= 8, "{report:?}");
    assert!(report.backends[0].retryable >= 8, "{report:?}");
    assert_eq!(report.backends[1].ok, 16);
}

/// A dispatched frame must carry the request's *remaining* deadline
/// budget — after gateway queueing, and especially after a retry, the
/// client's original `deadline_us` would let each backend restart the
/// full budget from its own arrival time and admit work whose
/// gateway-side deadline has effectively passed.
#[test]
fn retries_forward_the_remaining_deadline_budget() {
    let shape = tiny_graph().input_shape();
    // Two pathological backends: the request queue-fulls on the first,
    // retries once onto the second, then exhausts its budget of 1.
    let fake0 = TcpListener::bind("127.0.0.1:0").expect("binds");
    let fake1 = TcpListener::bind("127.0.0.1:0").expect("binds");
    let backends = [
        fake0.local_addr().expect("addr"),
        fake1.local_addr().expect("addr"),
    ];
    let stop = AtomicBool::new(false);
    let (d0, d1) = (Mutex::new(Vec::new()), Mutex::new(Vec::new()));

    let mut config = fast_gateway("rr");
    config.retry_budget = 1;
    let gateway =
        Gateway::bind("127.0.0.1:0", &backends, config, SinkHandle::null()).expect("binds");
    let front = gateway.local_addr().expect("addr");
    let gh = gateway.handle();

    std::thread::scope(|scope| {
        scope.spawn(|| always_queue_full(&fake0, &stop, &d0));
        scope.spawn(|| always_queue_full(&fake1, &stop, &d1));
        let gt = scope.spawn(|| gateway.run());

        let mut client = ProtoClient::connect(front).expect("connects");
        client
            .set_read_timeout(Some(Duration::from_millis(20)))
            .expect("timeout");
        let mut frame = request(1, shape);
        frame.deadline_us = 500_000;
        client.send(&frame).expect("sends");
        let r = client
            .recv_id(1, Duration::from_secs(5))
            .expect("no error")
            .expect("answered");
        assert_eq!(r.status, Status::QueueFull, "budget exhausts after 1 retry");

        gh.shutdown();
        gt.join().expect("no panic").expect("gateway serves");
        stop.store(true, Ordering::SeqCst);
    });

    let seen: Vec<u64> = {
        let (d0, d1) = (d0.lock().expect("lock"), d1.lock().expect("lock"));
        d0.iter().chain(d1.iter()).copied().collect()
    };
    assert_eq!(seen.len(), 2, "one dispatch + one retry: {seen:?}");
    let first = *seen.iter().max().expect("nonempty");
    let second = *seen.iter().min().expect("nonempty");
    assert!(
        first < 500_000,
        "dispatch must forward the remaining budget, saw {first}"
    );
    assert!(second < first, "retry must shrink the budget: {seen:?}");
    assert!(second > 0, "a live deadline never degrades to `none` (0)");
}

#[test]
fn empty_rotation_degrades_to_shutting_down_answers() {
    let graph = tiny_graph();
    let shape = graph.input_shape();
    let b0 = LiveServer::bind(
        "127.0.0.1:0",
        &graph,
        backend_config(16),
        SinkHandle::null(),
    )
    .expect("binds");
    let backends = [b0.local_addr().expect("addr")];
    let h0 = b0.handle();

    let gateway = Gateway::bind(
        "127.0.0.1:0",
        &backends,
        fast_gateway("jsq"),
        SinkHandle::null(),
    )
    .expect("binds");
    let front = gateway.local_addr().expect("addr");
    let gh = gateway.handle();

    let report = std::thread::scope(|scope| {
        let bt = scope.spawn(|| b0.run());
        let gt = scope.spawn(|| gateway.run());

        // Kill the only backend and wait until the rotation is empty.
        h0.shutdown();
        bt.join().expect("no panic").expect("backend serves");
        assert!(
            wait_for(Duration::from_secs(10), || gh.healthy_backends() == 0),
            "dead backend was never ejected"
        );

        // The gateway still answers — with shutting-down, not silence.
        let mut client = ProtoClient::connect(front).expect("connects");
        client
            .set_read_timeout(Some(Duration::from_millis(20)))
            .expect("timeout");
        for id in 1..=4u64 {
            client.send(&request(id, shape)).expect("sends");
            let r = client
                .recv_id(id, Duration::from_secs(5))
                .expect("no error")
                .expect("answered");
            assert_eq!(r.status, Status::ShuttingDown);
        }

        gh.shutdown();
        gt.join().expect("no panic").expect("gateway serves")
    });

    assert!(report.conservation_holds(), "{report:?}");
    assert_eq!(report.received, 4);
    assert_eq!(report.rejects.shutting_down, 4);
    assert_eq!(report.no_backend, 4);
    assert_eq!(report.answered_ok, 0);
}

#[test]
fn startup_errors_are_typed() {
    // No backends configured at all.
    let err = Gateway::bind(
        "127.0.0.1:0",
        &[],
        GatewayConfig::default(),
        SinkHandle::null(),
    )
    .map(|_| ())
    .expect_err("must refuse an empty backend list");
    assert!(matches!(err, adaflow_gateway::GatewayError::NoBackends));

    // A backend address nothing listens on: bind succeeds (the gateway
    // contacts backends at run), run refuses to serve.
    let dead = {
        let l = TcpListener::bind("127.0.0.1:0").expect("binds");
        l.local_addr().expect("addr")
    }; // listener dropped: the port is closed
    let gateway = Gateway::bind(
        "127.0.0.1:0",
        &[dead],
        GatewayConfig::default(),
        SinkHandle::null(),
    )
    .expect("bind is backend-agnostic");
    let err: Result<GatewayReport, _> = gateway.run();
    assert!(matches!(
        err.expect_err("must refuse to serve with zero healthy backends"),
        adaflow_gateway::GatewayError::NoHealthyBackends { total: 1 }
    ));
}
