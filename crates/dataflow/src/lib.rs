//! # adaflow-dataflow — FINN-style dataflow accelerator model
//!
//! Models the hardware side of the reproduction: the mapping of a CNN graph
//! onto a feed-forward pipeline of hardware modules (paper Fig. 2), the
//! PE/SIMD folding arithmetic that governs throughput, and a finite-buffer
//! streaming simulation standing in for the original flow's Verilator runs.
//!
//! * [`module`] — per-module descriptors (SWU, MVTU, MaxPool, LabelSelect)
//!   and their cycle models;
//! * [`accel`] — compiling a graph + folding config into a
//!   [`DataflowAccelerator`] of one of the three kinds the paper studies
//!   (original FINN, Fixed-Pruning, Flexible-Pruning), with throughput and
//!   latency estimation;
//! * [`stream`] — a synchronous-dataflow pipeline simulator with finite
//!   FIFOs and back-pressure, validating the analytical initiation-interval
//!   model the way FINN validates against RTL simulation.
//!
//! ## Quickstart
//!
//! ```
//! use adaflow_model::prelude::*;
//! use adaflow_pruning::FinnConfig;
//! use adaflow_dataflow::{AcceleratorKind, DataflowAccelerator};
//!
//! let graph = topology::cnv_w2a2_cifar10()?;
//! let folding = FinnConfig::cnv_reference(&graph)?;
//! let accel = DataflowAccelerator::compile(&graph, &folding, AcceleratorKind::Finn)?;
//! let fps = accel.throughput_fps();
//! assert!(fps > 100.0); // CNV at 100 MHz serves a few hundred FPS
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accel;
pub mod error;
pub mod fifo;
pub mod module;
pub mod stream;
pub mod verify;

pub use accel::{AcceleratorKind, DataflowAccelerator, PerfReport};
pub use error::DataflowError;
pub use fifo::{size_fifos, try_size_fifos, FifoSizing};
pub use module::{ModuleKind, ModuleSpec};
pub use stream::{StreamSimulator, StreamStats};
pub use verify::{
    check_accelerator, check_fifo_liveness, check_folding, check_rate_balance, verify_dataflow,
};

/// Default accelerator clock: 100 MHz, the paper's synthesis target on the
/// ZCU104.
pub const DEFAULT_CLOCK_HZ: u64 = 100_000_000;
