//! Inter-module FIFO sizing.
//!
//! FINN inserts stream FIFOs between dataflow layers and sizes them so the
//! pipeline sustains its bottleneck-limited initiation interval. This module
//! reproduces that design step analytically: the steady-state II of a chain
//! is `max(max_i c_i, max_i ⌈(c_i + c_{i+1}) / d_i⌉)` (the maximum cycle
//! mean of the pipeline's max-plus recurrence), so inverting the pair-cycle
//! bound yields the provably minimal capacity per edge —
//! [`adaflow_verify::required_edge_capacity`], the same bound the `DF005`
//! deadlock-freedom rule certifies. The uniform allocation the stream model
//! uses is the maximum of those per-edge bounds, and a cycle-accurate
//! [`StreamSimulator`] probe cross-validates that the analytic depth really
//! achieves the bottleneck II before it is reported.

use crate::accel::DataflowAccelerator;
use crate::module::ModuleSpec;
use crate::stream::StreamSimulator;
use adaflow_verify::required_edge_capacity;
use serde::{Deserialize, Serialize};

/// Result of the FIFO sizing search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FifoSizing {
    /// Minimal uniform FIFO depth (frames of slack per edge) sustaining the
    /// bottleneck II.
    pub depth: usize,
    /// The bottleneck (analytical) initiation interval in cycles.
    pub target_ii: u64,
    /// Observed II at the chosen depth (equals `target_ii`).
    pub achieved_ii: u64,
    /// Observed II at depth 1, for comparison (the cost of under-buffering).
    pub depth1_ii: u64,
    /// Pipeline fill latency at the chosen depth, cycles.
    pub fill_latency: u64,
    /// Number of buffered frames across the pipeline at the chosen depth
    /// (edges × depth) — proportional to FIFO memory cost.
    pub buffered_frames: usize,
    /// Provably minimal capacity per inter-module edge (pipeline order):
    /// the inverted pair-cycle bound `⌈(c_up + c_down) / target_ii⌉`.
    pub per_edge_depths: Vec<usize>,
    /// Total frames the per-edge bounds allocate (`Σ per_edge_depths`) —
    /// the proven-safe floor the uniform allocation is compared against.
    pub proven_frames: usize,
}

/// Frames simulated per sizing probe; enough to reach steady state for any
/// pipeline whose depth search stays below `PROBE_FRAMES / 2`.
const PROBE_FRAMES: usize = 48;
/// Upper bound on the depth search (a chain pipeline never needs more).
const MAX_DEPTH: usize = 16;

/// Sizes the inter-module FIFOs of `accel`.
///
/// # Panics
///
/// Panics if no depth up to an internal bound sustains the bottleneck II
/// (cannot happen for chain pipelines, where depth 2 always suffices; the
/// bound guards future non-chain topologies). The verifier's `DF003` rule
/// wraps the non-panicking [`try_size_fifos`] to report this as a
/// diagnostic instead.
#[must_use]
pub fn size_fifos(accel: &DataflowAccelerator) -> FifoSizing {
    try_size_fifos(accel).expect("a chain pipeline reaches its bottleneck II by depth 2")
}

/// Sizes the inter-module FIFOs of `accel`, returning `None` when no depth
/// up to the internal search bound sustains the bottleneck II.
///
/// The per-edge capacities come from the analytic pair-cycle bound; the
/// uniform depth starts at their maximum and a simulator probe confirms it
/// (widening within the search bound if the analytic model were ever
/// optimistic, which the test suite pins it never is for chain pipelines).
#[must_use]
pub fn try_size_fifos(accel: &DataflowAccelerator) -> Option<FifoSizing> {
    let target_ii = accel.initiation_interval();
    let cycles: Vec<u64> = accel
        .modules()
        .iter()
        .map(ModuleSpec::cycles_per_frame)
        .collect();
    let per_edge_depths: Vec<usize> = cycles
        .windows(2)
        .map(|pair| required_edge_capacity(pair[0], pair[1], target_ii))
        .collect();
    let proven_frames = per_edge_depths.iter().sum();
    let analytic_depth = per_edge_depths.iter().copied().max().unwrap_or(1);
    let depth1 = StreamSimulator::new(accel, 1).run(PROBE_FRAMES);
    let mut chosen = None;
    for depth in analytic_depth..=MAX_DEPTH {
        let stats = StreamSimulator::new(accel, depth).run(PROBE_FRAMES);
        if stats.observed_ii == target_ii {
            chosen = Some((depth, stats));
            break;
        }
    }
    let (depth, stats) = chosen?;
    let edges = accel.modules().len().saturating_sub(1);
    Some(FifoSizing {
        depth,
        target_ii,
        achieved_ii: stats.observed_ii,
        depth1_ii: depth1.observed_ii,
        fill_latency: stats.first_frame_cycles,
        buffered_frames: edges * depth,
        per_edge_depths,
        proven_frames,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::AcceleratorKind;
    use adaflow_model::prelude::*;
    use adaflow_pruning::FinnConfig;

    fn cnv_accel() -> DataflowAccelerator {
        let g = topology::cnv_w2a2_cifar10().expect("builds");
        let cfg = FinnConfig::cnv_reference(&g).expect("valid");
        DataflowAccelerator::compile(&g, &cfg, AcceleratorKind::Finn).expect("compiles")
    }

    #[test]
    fn cnv_needs_depth_two() {
        let sizing = size_fifos(&cnv_accel());
        assert_eq!(sizing.depth, 2);
        assert_eq!(sizing.achieved_ii, sizing.target_ii);
        assert!(
            sizing.depth1_ii > sizing.target_ii,
            "depth 1 must under-perform"
        );
    }

    #[test]
    fn fill_latency_at_least_sum_of_modules() {
        let accel = cnv_accel();
        let sizing = size_fifos(&accel);
        assert!(sizing.fill_latency >= accel.latency_cycles());
    }

    #[test]
    fn buffered_frames_counts_edges() {
        let accel = cnv_accel();
        let sizing = size_fifos(&accel);
        assert_eq!(
            sizing.buffered_frames,
            (accel.modules().len() - 1) * sizing.depth
        );
    }

    #[test]
    fn analytic_depth_matches_simulated_minimum() {
        // The uniform depth is the max per-edge pair-cycle bound, and the
        // simulator accepts it without widening: for the CNV reference the
        // worst pair is swu2+mvtu2 over mvtu2's own II, giving exactly 2.
        let sizing = size_fifos(&cnv_accel());
        let analytic = sizing.per_edge_depths.iter().copied().max().unwrap();
        assert_eq!(sizing.depth, analytic);
        assert!(sizing.per_edge_depths.iter().all(|&d| d >= 1));
        assert_eq!(
            sizing.proven_frames,
            sizing.per_edge_depths.iter().sum::<usize>()
        );
        // The proven floor never exceeds the uniform allocation.
        assert!(sizing.proven_frames <= sizing.buffered_frames);
    }

    #[test]
    fn balanced_pipeline_is_fine_at_depth_one() {
        let g = topology::tiny(QuantSpec::w2a2(), 4).expect("builds");
        let cfg = FinnConfig::auto(&g).expect("auto");
        let accel =
            DataflowAccelerator::compile(&g, &cfg, AcceleratorKind::Finn).expect("compiles");
        let sizing = size_fifos(&accel);
        assert!(sizing.depth <= 2);
        assert_eq!(sizing.achieved_ii, accel.initiation_interval());
    }
}
