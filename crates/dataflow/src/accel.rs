//! Dataflow accelerator compilation and performance estimation.

use crate::error::DataflowError;
use crate::module::{ModuleKind, ModuleSpec};
use crate::DEFAULT_CLOCK_HZ;
use adaflow_model::{CnnGraph, Layer};
use adaflow_pruning::FinnConfig;
use serde::{Deserialize, Serialize};

/// The three accelerator families the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AcceleratorKind {
    /// The original FINN accelerator, synthesized for the unpruned model.
    Finn,
    /// A Fixed-Pruning accelerator: synthesized for one particular pruned
    /// model; switching models requires an FPGA reconfiguration.
    FixedPruning,
    /// The Flexible-Pruning accelerator: synthesized for the worst case with
    /// runtime-controllable channel counts; switches models without
    /// reconfiguration at the cost of extra logic.
    FlexiblePruning,
}

impl AcceleratorKind {
    /// Whether this kind instantiates the flexible HLS templates.
    #[must_use]
    pub fn is_flexible(&self) -> bool {
        matches!(self, AcceleratorKind::FlexiblePruning)
    }

    /// Short name used in reports.
    #[must_use]
    pub fn short_name(&self) -> &'static str {
        match self {
            AcceleratorKind::Finn => "finn",
            AcceleratorKind::FixedPruning => "fixed",
            AcceleratorKind::FlexiblePruning => "flexible",
        }
    }
}

impl std::fmt::Display for AcceleratorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Per-module performance breakdown.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfReport {
    /// Module name and its steady-state cycles per frame, in pipeline order.
    pub module_cycles: Vec<(String, u64)>,
    /// Initiation interval: cycles between successive frame completions.
    pub initiation_interval: u64,
    /// End-to-end latency of one frame through the empty pipeline.
    pub latency_cycles: u64,
    /// Steady-state throughput at the accelerator clock.
    pub throughput_fps: f64,
}

/// A compiled dataflow accelerator.
///
/// Holds the module pipeline and answers performance queries. Resource and
/// power estimation live in `adaflow-hls`, which consumes [`ModuleSpec`]s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataflowAccelerator {
    name: String,
    kind: AcceleratorKind,
    clock_hz: u64,
    modules: Vec<ModuleSpec>,
    /// Channel vector the accelerator was synthesized for (worst case for
    /// flexible accelerators).
    synth_channels: Vec<usize>,
}

impl DataflowAccelerator {
    /// Compiles `graph` with folding `config` into an accelerator of the
    /// given kind, at the default 100 MHz clock.
    ///
    /// For [`AcceleratorKind::FlexiblePruning`] the graph is the *worst
    /// case* (unpruned) model; runtime configurations are evaluated with
    /// [`DataflowAccelerator::performance_for`].
    ///
    /// # Errors
    ///
    /// Returns [`DataflowError::MissingFolding`] when an MVTU layer lacks a
    /// folding entry, or [`DataflowError::Unmappable`] for unsupported
    /// structures.
    pub fn compile(
        graph: &CnnGraph,
        config: &FinnConfig,
        kind: AcceleratorKind,
    ) -> Result<Self, DataflowError> {
        config.validate(graph)?;
        let flexible = kind.is_flexible();
        let mut modules = Vec::new();
        for node in graph.iter() {
            match &node.layer {
                Layer::Conv2d(c) => {
                    let folding = config
                        .folding(node.id)
                        .ok_or_else(|| DataflowError::MissingFolding(node.name.clone()))?;
                    let out_pixels = node.output_shape.spatial();
                    modules.push(ModuleSpec {
                        name: format!("{}_swu", node.name),
                        kind: ModuleKind::Swu {
                            in_channels: c.in_channels,
                            kernel: c.kernel,
                            out_pixels,
                            simd: folding.simd,
                            act_bits: c.quant.act_bits,
                        },
                        flexible,
                    });
                    modules.push(ModuleSpec {
                        name: format!("{}_mvtu", node.name),
                        kind: ModuleKind::Mvtu {
                            rows: c.out_channels,
                            cols: c.kernel * c.kernel * c.in_channels,
                            pe: folding.pe,
                            simd: folding.simd,
                            out_pixels,
                            weight_bits: c.quant.weight_bits,
                            act_bits: c.quant.act_bits,
                            threshold_levels: next_threshold_levels(graph, node.id.0),
                        },
                        flexible,
                    });
                }
                Layer::Dense(d) => {
                    let folding = config
                        .folding(node.id)
                        .ok_or_else(|| DataflowError::MissingFolding(node.name.clone()))?;
                    modules.push(ModuleSpec {
                        name: format!("{}_mvtu", node.name),
                        kind: ModuleKind::Mvtu {
                            rows: d.out_features,
                            cols: d.in_features,
                            pe: folding.pe,
                            simd: folding.simd,
                            out_pixels: 1,
                            weight_bits: d.quant.weight_bits,
                            act_bits: d.quant.act_bits,
                            threshold_levels: next_threshold_levels(graph, node.id.0),
                        },
                        flexible,
                    });
                }
                Layer::MaxPool2d(p) => {
                    modules.push(ModuleSpec {
                        name: node.name.clone(),
                        kind: ModuleKind::MaxPool {
                            channels: node.input_shape.channels,
                            kernel: p.kernel,
                            in_pixels: node.input_shape.spatial(),
                            act_bits: graph.quant().map_or(2, |q| q.act_bits),
                        },
                        flexible,
                    });
                }
                Layer::MultiThreshold(_) => {
                    // Folded into the preceding MVTU.
                }
                Layer::LabelSelect(l) => {
                    modules.push(ModuleSpec {
                        name: node.name.clone(),
                        kind: ModuleKind::LabelSelect { classes: l.classes },
                        // LabelSelect has no channel-dependent loops; it is
                        // identical in flexible and fixed accelerators.
                        flexible: false,
                    });
                }
            }
        }
        if modules.is_empty() {
            return Err(DataflowError::Unmappable {
                layer: "<graph>".into(),
                reason: "graph produced no hardware modules".into(),
            });
        }
        Ok(Self {
            name: format!("{}-{}", graph.name(), kind.short_name()),
            kind,
            clock_hz: DEFAULT_CLOCK_HZ,
            modules,
            synth_channels: graph.conv_channels(),
        })
    }

    /// Accelerator instance name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Accelerator family.
    #[must_use]
    pub fn kind(&self) -> AcceleratorKind {
        self.kind
    }

    /// Clock frequency in Hz.
    #[must_use]
    pub fn clock_hz(&self) -> u64 {
        self.clock_hz
    }

    /// Returns a copy clocked at `clock_hz`.
    #[must_use]
    pub fn with_clock(mut self, clock_hz: u64) -> Self {
        assert!(clock_hz > 0, "clock must be nonzero");
        self.clock_hz = clock_hz;
        self
    }

    /// The module pipeline in dataflow order.
    #[must_use]
    pub fn modules(&self) -> &[ModuleSpec] {
        &self.modules
    }

    /// Channel vector the accelerator was synthesized for.
    #[must_use]
    pub fn synth_channels(&self) -> &[usize] {
        &self.synth_channels
    }

    /// Initiation interval: the slowest module's cycles per frame.
    #[must_use]
    pub fn initiation_interval(&self) -> u64 {
        self.modules
            .iter()
            .map(ModuleSpec::cycles_per_frame)
            .max()
            .unwrap_or(1)
    }

    /// Latency of one frame through the empty pipeline (sum of module
    /// cycles).
    #[must_use]
    pub fn latency_cycles(&self) -> u64 {
        self.modules.iter().map(ModuleSpec::cycles_per_frame).sum()
    }

    /// Steady-state throughput in frames per second.
    #[must_use]
    pub fn throughput_fps(&self) -> f64 {
        self.clock_hz as f64 / self.initiation_interval() as f64
    }

    /// Full performance report.
    #[must_use]
    pub fn performance(&self) -> PerfReport {
        PerfReport {
            module_cycles: self
                .modules
                .iter()
                .map(|m| (m.name.clone(), m.cycles_per_frame()))
                .collect(),
            initiation_interval: self.initiation_interval(),
            latency_cycles: self.latency_cycles(),
            throughput_fps: self.throughput_fps(),
        }
    }

    /// Performance of this *flexible* accelerator when loaded with a pruned
    /// model: the folding math is evaluated on the loaded model's channel
    /// counts (fewer pipeline iterations, Fig. 3a) while the flexible cycle
    /// overheads still apply.
    ///
    /// # Errors
    ///
    /// Returns [`DataflowError::BadConfiguration`] when called on a
    /// non-flexible accelerator or when `model` exceeds the synthesized
    /// worst case.
    pub fn performance_for(
        &self,
        model: &CnnGraph,
        config: &FinnConfig,
    ) -> Result<PerfReport, DataflowError> {
        if !self.kind.is_flexible() {
            return Err(DataflowError::BadConfiguration(
                "only flexible accelerators accept runtime model configurations".into(),
            ));
        }
        let loaded = model.conv_channels();
        if loaded.len() != self.synth_channels.len() {
            return Err(DataflowError::BadConfiguration(format!(
                "model has {} conv layers, fabric was synthesized for {}",
                loaded.len(),
                self.synth_channels.len()
            )));
        }
        for (l, w) in loaded.iter().zip(&self.synth_channels) {
            if l > w {
                return Err(DataflowError::BadConfiguration(format!(
                    "runtime channels {l} exceed synthesized worst case {w}"
                )));
            }
        }
        // Folding arithmetic on the loaded model, flexible overheads on.
        let configured = Self::compile(model, config, AcceleratorKind::FlexiblePruning)?
            .with_clock(self.clock_hz);
        Ok(configured.performance())
    }
}

/// Threshold levels of the MultiThreshold immediately following layer
/// `idx`, if any (FINN folds it into the MVTU).
fn next_threshold_levels(graph: &CnnGraph, idx: usize) -> usize {
    graph
        .nodes()
        .get(idx + 1)
        .and_then(|n| match &n.layer {
            Layer::MultiThreshold(t) => Some(t.table.levels()),
            _ => None,
        })
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaflow_model::prelude::*;
    use adaflow_pruning::DataflowAwarePruner;

    fn cnv_setup() -> (CnnGraph, FinnConfig) {
        let g = topology::cnv_w2a2_cifar10().expect("builds");
        let cfg = FinnConfig::cnv_reference(&g).expect("valid");
        (g, cfg)
    }

    #[test]
    fn cnv_module_count() {
        let (g, cfg) = cnv_setup();
        let accel =
            DataflowAccelerator::compile(&g, &cfg, AcceleratorKind::Finn).expect("compiles");
        // 6 convs -> 12 modules (SWU+MVTU), 2 pools, 3 dense MVTUs, 1 labelselect.
        assert_eq!(accel.modules().len(), 12 + 2 + 3 + 1);
    }

    #[test]
    fn cnv_baseline_throughput_in_expected_band() {
        // With the reference folding, conv2 dominates: 4·72·784 cycles
        // ≈ 226k → ~443 FPS at 100 MHz. The paper's Edge server workload is
        // 600 FPS peak, so the unpruned FINN under-serves — exactly the
        // premise of Fig. 1(b).
        let (g, cfg) = cnv_setup();
        let accel =
            DataflowAccelerator::compile(&g, &cfg, AcceleratorKind::Finn).expect("compiles");
        let fps = accel.throughput_fps();
        assert!((400.0..500.0).contains(&fps), "baseline FPS {fps}");
    }

    #[test]
    fn initiation_interval_is_max_module() {
        let (g, cfg) = cnv_setup();
        let accel =
            DataflowAccelerator::compile(&g, &cfg, AcceleratorKind::Finn).expect("compiles");
        let perf = accel.performance();
        let max = perf
            .module_cycles
            .iter()
            .map(|(_, c)| *c)
            .max()
            .expect("compile rejects graphs producing no modules");
        assert_eq!(perf.initiation_interval, max);
        assert!(perf.latency_cycles >= perf.initiation_interval);
    }

    #[test]
    fn pruned_fixed_is_faster() {
        let (g, cfg) = cnv_setup();
        let baseline =
            DataflowAccelerator::compile(&g, &cfg, AcceleratorKind::Finn).expect("compiles");
        let pruner = DataflowAwarePruner::new(cfg.clone());
        let pruned = pruner.prune(&g, 0.25).expect("prunes");
        let fixed =
            DataflowAccelerator::compile(&pruned.graph, &cfg, AcceleratorKind::FixedPruning)
                .expect("compiles");
        assert!(fixed.throughput_fps() > baseline.throughput_fps());
    }

    #[test]
    fn flexible_latency_overhead_within_paper_bounds() {
        let (g, cfg) = cnv_setup();
        let fixed =
            DataflowAccelerator::compile(&g, &cfg, AcceleratorKind::FixedPruning).expect("ok");
        let flex =
            DataflowAccelerator::compile(&g, &cfg, AcceleratorKind::FlexiblePruning).expect("ok");
        let rel = flex.latency_cycles() as f64 / fixed.latency_cycles() as f64 - 1.0;
        assert!(rel > 0.0, "flexible must cost something");
        assert!(
            rel <= 0.037,
            "latency overhead {rel} above the paper's 3.7% max"
        );
    }

    #[test]
    fn flexible_performance_for_pruned_model() {
        let (g, cfg) = cnv_setup();
        let flex =
            DataflowAccelerator::compile(&g, &cfg, AcceleratorKind::FlexiblePruning).expect("ok");
        let pruner = DataflowAwarePruner::new(cfg.clone());
        let pruned = pruner.prune(&g, 0.5).expect("prunes");
        let perf = flex
            .performance_for(&pruned.graph, &cfg)
            .expect("configures");
        assert!(perf.throughput_fps > flex.throughput_fps());
    }

    #[test]
    fn performance_for_rejects_fixed_accelerators() {
        let (g, cfg) = cnv_setup();
        let fixed =
            DataflowAccelerator::compile(&g, &cfg, AcceleratorKind::FixedPruning).expect("ok");
        assert!(matches!(
            fixed.performance_for(&g, &cfg),
            Err(DataflowError::BadConfiguration(_))
        ));
    }

    #[test]
    fn performance_for_rejects_oversized_model() {
        let (g, cfg) = cnv_setup();
        let pruner = DataflowAwarePruner::new(cfg.clone());
        let pruned = pruner.prune(&g, 0.5).expect("prunes");
        // Fabric synthesized for the *pruned* model cannot host the full one.
        let small_flex =
            DataflowAccelerator::compile(&pruned.graph, &cfg, AcceleratorKind::FlexiblePruning)
                .expect("ok");
        assert!(small_flex.performance_for(&g, &cfg).is_err());
    }

    #[test]
    fn clock_scales_throughput() {
        let (g, cfg) = cnv_setup();
        let a = DataflowAccelerator::compile(&g, &cfg, AcceleratorKind::Finn).expect("ok");
        let double = a.clone().with_clock(200_000_000);
        let ratio = double.throughput_fps() / a.throughput_fps();
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn thresholds_folded_into_mvtus() {
        let (g, cfg) = cnv_setup();
        let accel = DataflowAccelerator::compile(&g, &cfg, AcceleratorKind::Finn).expect("ok");
        // No standalone threshold modules; conv MVTUs carry 3 levels (W2A2).
        let mvtu_levels: Vec<usize> = accel
            .modules()
            .iter()
            .filter_map(|m| match &m.kind {
                ModuleKind::Mvtu {
                    threshold_levels, ..
                } => Some(*threshold_levels),
                _ => None,
            })
            .collect();
        assert_eq!(mvtu_levels.len(), 9);
        assert!(mvtu_levels[..8].iter().all(|&l| l == 3));
        assert_eq!(mvtu_levels[8], 0, "classifier MVTU has no thresholds");
    }

    #[test]
    fn tiny_graph_compiles_for_all_kinds() {
        let g = topology::tiny(QuantSpec::w2a2(), 4).expect("builds");
        let cfg = FinnConfig::auto(&g).expect("auto");
        for kind in [
            AcceleratorKind::Finn,
            AcceleratorKind::FixedPruning,
            AcceleratorKind::FlexiblePruning,
        ] {
            let a = DataflowAccelerator::compile(&g, &cfg, kind).expect("compiles");
            assert!(a.throughput_fps() > 0.0);
            assert_eq!(a.kind(), kind);
        }
    }
}
