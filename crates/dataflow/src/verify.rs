//! Dataflow-level verification rules (`DF001`–`DF005`).
//!
//! These extend the graph rule catalog in `adaflow-verify` with checks that
//! need the folding configuration and the compiled module pipeline, which
//! sit above that crate in the dependency order:
//!
//! * `DF001` — folding divisibility: every MVTU layer has a folding entry
//!   whose `PE` divides the filter/neuron count and whose `SIMD` divides
//!   the input channel count (FINN's no-idle-lanes constraint);
//! * `DF002` — stream-width consistency: each SWU emits windows at exactly
//!   the width its consumer MVTU ingests (`SIMD` lanes, `k²·ch_in`
//!   columns), and MVTU folding never exceeds the matrix geometry;
//! * `DF003` — FIFO sizing: a uniform FIFO depth within the search bound
//!   sustains the analytical bottleneck initiation interval, reported with
//!   the chosen depth and buffering cost; warns when the uniform
//!   allocation exceeds twice the proven-safe per-edge total;
//! * `DF004` — steady-state rate balance: the max-plus fixpoint over the
//!   SWU↔MVTU↔pool stages under the compiled folding, reporting the
//!   bottleneck stage, its utilization and the mismatch severity;
//! * `DF005` — FIFO deadlock-freedom: the allocated capacities are proven
//!   live on the timed-marked-graph model (no zero-token cycle), with a
//!   concrete counterexample token trace when they are not.
//!
//! All five share the diagnostics engine, severity policy and report
//! format of `adaflow-verify`, so the CLI can merge graph and dataflow
//! passes into one lint report. The `DF004`/`DF005` engines themselves
//! (the fixpoint solver, `rate_balance`, `TimedMarkedGraph`) live in
//! `adaflow-verify` and are fed module cycle counts from here.

use crate::accel::DataflowAccelerator;
use crate::fifo::try_size_fifos;
use crate::module::ModuleKind;
use adaflow_model::{CnnGraph, Layer};
use adaflow_pruning::FinnConfig;
use adaflow_verify::{
    rate_balance_uniform, Diagnostics, LintConfig, Liveness, MismatchSeverity, Report, Severity,
    Stage, TimedMarkedGraph,
};

/// `DF001`: checks folding divisibility of `config` against `graph`,
/// emitting into `diag`. Unlike `FinnConfig::validate`, this scans every
/// MVTU and reports all violations instead of failing on the first.
pub fn check_folding(graph: &CnnGraph, config: &FinnConfig, diag: &mut Diagnostics) {
    for node in graph.iter() {
        let (out, inp) = match &node.layer {
            Layer::Conv2d(c) => (c.out_channels, c.in_channels),
            Layer::Dense(d) => (d.out_features, d.in_features),
            _ => continue,
        };
        let at = Some((node.id.0, node.name.as_str()));
        let Some(folding) = config.folding(node.id) else {
            diag.report(
                "DF001",
                Severity::Error,
                at,
                "MVTU layer has no folding entry",
                Some("add a (PE, SIMD) entry for this layer to the FinnConfig".into()),
            );
            continue;
        };
        if folding.pe == 0 || folding.simd == 0 {
            diag.report(
                "DF001",
                Severity::Error,
                at,
                format!(
                    "folding PE {} × SIMD {} must be nonzero",
                    folding.pe, folding.simd
                ),
                None,
            );
            continue;
        }
        if out % folding.pe != 0 {
            diag.report(
                "DF001",
                Severity::Error,
                at,
                format!(
                    "PE {} does not divide {out} filters/neurons — idle processing elements",
                    folding.pe,
                ),
                Some(format!("choose a PE from the divisors of {out}")),
            );
        }
        if inp % folding.simd != 0 {
            diag.report(
                "DF001",
                Severity::Error,
                at,
                format!(
                    "SIMD {} does not divide {inp} input channels — idle lanes",
                    folding.simd,
                ),
                Some(format!("choose a SIMD from the divisors of {inp}")),
            );
        }
    }
}

/// `DF002` + `DF003`: checks the compiled module pipeline — stream widths
/// between producers and consumers, folding-vs-geometry sanity, and FIFO
/// sizing convergence.
pub fn check_accelerator(accel: &DataflowAccelerator, diag: &mut Diagnostics) {
    let modules = accel.modules();
    for (idx, module) in modules.iter().enumerate() {
        let at = Some((idx, module.name.as_str()));
        match &module.kind {
            ModuleKind::Swu {
                in_channels,
                kernel,
                simd,
                ..
            } => {
                let window = kernel * kernel * in_channels;
                match modules.get(idx + 1).map(|m| &m.kind) {
                    Some(ModuleKind::Mvtu {
                        cols,
                        simd: consumer_simd,
                        ..
                    }) => {
                        if simd != consumer_simd {
                            diag.report(
                                "DF002",
                                Severity::Error,
                                at,
                                format!(
                                    "SWU emits {simd}-wide slices but the consumer MVTU ingests \
                                     {consumer_simd} SIMD lanes",
                                ),
                                Some("use the consumer MVTU's SIMD as the SWU stream width".into()),
                            );
                        }
                        if window != *cols {
                            diag.report(
                                "DF002",
                                Severity::Error,
                                at,
                                format!(
                                    "SWU window is {window} elements (k²·ch_in) but the consumer \
                                     MVTU expects {cols} columns",
                                ),
                                None,
                            );
                        }
                    }
                    _ => diag.report(
                        "DF002",
                        Severity::Error,
                        at,
                        "SWU is not followed by an MVTU consumer",
                        Some("pair every sliding-window unit with its matrix-vector unit".into()),
                    ),
                }
            }
            ModuleKind::Mvtu {
                rows,
                cols,
                pe,
                simd,
                ..
            } => {
                if *pe == 0 || *simd == 0 {
                    diag.report(
                        "DF002",
                        Severity::Error,
                        at,
                        format!("MVTU folded on PE {pe} × SIMD {simd}; both must be nonzero"),
                        None,
                    );
                } else if pe > rows || simd > cols {
                    diag.report(
                        "DF002",
                        Severity::Warn,
                        at,
                        format!(
                            "folding PE {pe} × SIMD {simd} exceeds the {rows}×{cols} weight \
                             matrix — over-provisioned parallelism",
                        ),
                        Some("cap PE at the row count and SIMD at the column count".into()),
                    );
                }
            }
            ModuleKind::MaxPool { .. } | ModuleKind::LabelSelect { .. } => {}
        }
    }
    match try_size_fifos(accel) {
        Some(sizing) => {
            diag.report(
                "DF003",
                Severity::Info,
                None,
                format!(
                    "FIFO depth {} sustains the bottleneck II of {} cycles \
                     ({} buffered frames across the pipeline; per-edge analysis \
                     proves {} suffice)",
                    sizing.depth, sizing.target_ii, sizing.buffered_frames, sizing.proven_frames,
                ),
                None,
            );
            if sizing.buffered_frames > 2 * sizing.proven_frames.max(1) {
                diag.report(
                    "DF003",
                    Severity::Warn,
                    None,
                    format!(
                        "uniform FIFO depth {} allocates {} buffered frames, more than \
                         twice the {} the per-edge pair-cycle bound proves safe",
                        sizing.depth, sizing.buffered_frames, sizing.proven_frames,
                    ),
                    Some(
                        "size each FIFO from its own pair-cycle bound \
                         (FifoSizing::per_edge_depths) instead of the uniform maximum"
                            .into(),
                    ),
                );
            }
            check_rate_balance(accel, sizing.depth, &mut *diag);
            check_fifo_liveness(
                accel,
                &vec![sizing.depth; modules.len().saturating_sub(1)],
                diag,
            );
        }
        None => diag.report(
            "DF003",
            Severity::Error,
            None,
            "no uniform FIFO depth within the search bound sustains the bottleneck \
             initiation interval",
            Some("rebalance the module pipeline or deepen the FIFO search bound".into()),
        ),
    }
}

/// The `(name, cycles-per-frame)` stage list of a compiled pipeline.
fn module_stages(accel: &DataflowAccelerator) -> Vec<(String, u64)> {
    accel
        .modules()
        .iter()
        .map(|m| (m.name.clone(), m.cycles_per_frame()))
        .collect()
}

/// `DF004`: solves the steady-state rate equations across the module chain
/// at a uniform FIFO depth and reports the bottleneck stage plus mismatch
/// severity. The fixpoint's II is cross-checked against the accelerator's
/// analytic initiation interval — a disagreement is a Warn, since it means
/// the performance model and the rate analysis have diverged.
pub fn check_rate_balance(accel: &DataflowAccelerator, depth: usize, diag: &mut Diagnostics) {
    let stages: Vec<Stage> = module_stages(accel)
        .into_iter()
        .map(|(name, cycles)| Stage::new(name, cycles))
        .collect();
    if stages.is_empty() {
        return;
    }
    let rate = rate_balance_uniform(&stages, depth);
    if !rate.stats.converged {
        diag.report(
            "DF004",
            Severity::Warn,
            None,
            "rate-balance fixpoint did not converge; no steady-state verdict",
            None,
        );
        return;
    }
    let utilization = rate
        .stages
        .get(rate.bottleneck)
        .map_or(1.0, |s| s.utilization);
    let suggestion = match rate.severity() {
        MismatchSeverity::Balanced => None,
        MismatchSeverity::Moderate | MismatchSeverity::Severe => Some(format!(
            "re-fold toward `{}`: raise its PE·SIMD product (or lower the others') \
             until stage utilizations converge",
            rate.bottleneck_name,
        )),
    };
    diag.report(
        "DF004",
        Severity::Info,
        None,
        format!(
            "steady-state II {} cycles; bottleneck `{}` at {:.0}% utilization; \
             stage mismatch {:.1}× ({})",
            rate.steady_ii,
            rate.bottleneck_name,
            utilization * 100.0,
            rate.mismatch_ratio,
            rate.severity(),
        ),
        suggestion,
    );
    let analytic = accel.initiation_interval();
    if !rate.fifo_bound && rate.steady_ii != analytic {
        diag.report(
            "DF004",
            Severity::Warn,
            None,
            format!(
                "rate fixpoint II {} disagrees with the performance model's {} — \
                 the stage cycle model and rate analysis have diverged",
                rate.steady_ii, analytic,
            ),
            None,
        );
    }
}

/// `DF005`: proves the given per-edge FIFO `capacities` admit a
/// deadlock-free schedule on the timed-marked-graph model of the pipeline,
/// or reports the blocked cycle with a token-trace counterexample.
///
/// `check_accelerator` calls this with the uniform allocation chosen by
/// `try_size_fifos`; callers probing hypothetical allocations (the CLI, the
/// under-sizing tests) can pass any capacity vector with one entry per
/// adjacent module pair.
///
/// # Panics
///
/// Panics if `capacities` does not hold exactly one entry per adjacent
/// module pair.
pub fn check_fifo_liveness(
    accel: &DataflowAccelerator,
    capacities: &[usize],
    diag: &mut Diagnostics,
) {
    let stages = module_stages(accel);
    if stages.len() < 2 {
        return;
    }
    let graph = TimedMarkedGraph::chain(&stages, capacities);
    match graph.check_liveness() {
        Liveness::Live {
            min_capacity,
            zero_token_edges,
        } => diag.report(
            "DF005",
            Severity::Info,
            None,
            format!(
                "FIFO allocation is deadlock-free: no zero-token cycle in the \
                 marked graph ({} modules, min capacity {}, {} empty data edges \
                 at start)",
                stages.len(),
                min_capacity,
                zero_token_edges,
            ),
            None,
        ),
        Liveness::Deadlock { cycle, trace } => diag.report(
            "DF005",
            Severity::Error,
            None,
            format!(
                "FIFO allocation deadlocks — {} modules are wedged in a zero-token \
                 cycle; counterexample: {}",
                cycle.len(),
                trace.join(" "),
            ),
            Some(
                "give every FIFO a capacity of at least 1 (pair-cycle bound for throughput)".into(),
            ),
        ),
    }
}

/// Runs the full dataflow rule set — `DF001` over `(graph, config)` and,
/// when an accelerator is supplied, `DF002`/`DF003` over its pipeline —
/// under the given lint policy.
#[must_use]
pub fn verify_dataflow(
    graph: &CnnGraph,
    config: &FinnConfig,
    accel: Option<&DataflowAccelerator>,
    lint: LintConfig,
) -> Report {
    let mut diag = Diagnostics::with_config(lint);
    check_folding(graph, config, &mut diag);
    if let Some(accel) = accel {
        check_accelerator(accel, &mut diag);
    }
    diag.into_report(accel.map_or_else(|| graph.name().to_string(), |a| a.name().to_string()))
}

/// Debug-build guard used by the HLS synthesis entry point: panics when the
/// compiled pipeline violates `DF002`/`DF003`.
///
/// # Panics
///
/// Panics with the full report when any error-severity finding is present.
pub fn debug_assert_accelerator(accel: &DataflowAccelerator, context: &str) {
    let mut diag = Diagnostics::new();
    check_accelerator(accel, &mut diag);
    let report = diag.into_report(accel.name());
    assert!(
        !report.has_errors(),
        "accelerator verification failed at {context}:\n{report}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::AcceleratorKind;
    use adaflow_model::prelude::*;

    fn cnv_setup() -> (CnnGraph, FinnConfig, DataflowAccelerator) {
        let g = topology::cnv_w2a2_cifar10().expect("builds");
        let cfg = FinnConfig::cnv_reference(&g).expect("valid");
        let accel =
            DataflowAccelerator::compile(&g, &cfg, AcceleratorKind::Finn).expect("compiles");
        (g, cfg, accel)
    }

    #[test]
    fn cnv_pipeline_lints_clean() {
        let (g, cfg, accel) = cnv_setup();
        let report = verify_dataflow(&g, &cfg, Some(&accel), LintConfig::default());
        assert!(!report.has_errors(), "{report}");
        // DF003 reports the FIFO sizing, DF004 the rate balance, DF005 the
        // liveness proof — all as info on the clean reference pipeline.
        assert!(report.fired("DF003"));
        assert!(report.fired("DF004"));
        assert!(report.fired("DF005"));
        assert_eq!(report.count(Severity::Warn), 0, "{report}");
    }

    #[test]
    fn rate_fixpoint_agrees_with_stream_simulation() {
        // The DF004 fixpoint and the cycle-accurate stream simulator must
        // land on the same steady-state II at the sized FIFO depth.
        let (_, _, accel) = cnv_setup();
        let sizing = crate::fifo::size_fifos(&accel);
        let stages: Vec<Stage> = accel
            .modules()
            .iter()
            .map(|m| Stage::new(m.name.clone(), m.cycles_per_frame()))
            .collect();
        let rate = rate_balance_uniform(&stages, sizing.depth);
        assert!(rate.stats.converged);
        assert_eq!(rate.steady_ii, sizing.achieved_ii);
        // And at depth 1 both models agree on the degraded II too.
        let rate1 = rate_balance_uniform(&stages, 1);
        assert_eq!(rate1.steady_ii, sizing.depth1_ii);
    }

    #[test]
    fn undersized_fifo_fires_df005_with_counterexample() {
        let (_, _, accel) = cnv_setup();
        let edges = accel.modules().len() - 1;
        // A crafted under-sized allocation: one FIFO with zero capacity
        // wedges the whole chain.
        let mut capacities = vec![2usize; edges];
        capacities[1] = 0;
        let mut diag = Diagnostics::new();
        check_fifo_liveness(&accel, &capacities, &mut diag);
        let report = diag.into_report(accel.name());
        assert!(report.has_errors());
        let finding = report
            .diagnostics
            .iter()
            .find(|d| d.code == "DF005" && d.severity == Severity::Error)
            .expect("DF005 error");
        assert!(finding.message.contains("counterexample"), "{finding}");
        assert!(finding.message.contains("capacity 0"), "{finding}");
    }

    #[test]
    fn severe_mismatch_reported_by_df004() {
        // The CNV reference folding is intentionally unbalanced (mvtu2
        // dominates), so DF004's Info must carry a bottleneck name and a
        // non-balanced severity with a re-folding suggestion.
        let (_, _, accel) = cnv_setup();
        let mut diag = Diagnostics::new();
        check_accelerator(&accel, &mut diag);
        let report = diag.into_report(accel.name());
        let df004 = report
            .diagnostics
            .iter()
            .find(|d| d.code == "DF004")
            .expect("DF004 fired");
        assert!(df004.message.contains("bottleneck"), "{df004}");
        assert!(df004.message.contains("steady-state II"), "{df004}");
    }

    #[test]
    fn missing_folding_entry_fires_df001() {
        let g = topology::tiny(QuantSpec::w2a2(), 4).expect("builds");
        // A config built for a different graph misses this graph's layer ids.
        let other = topology::lenet(QuantSpec::w2a2(), 10).expect("builds");
        let cfg = FinnConfig::auto(&other).expect("auto");
        let report = verify_dataflow(&g, &cfg, None, LintConfig::default());
        assert!(report.has_errors());
        assert!(report.fired("DF001"));
    }

    use serde::Value;

    /// JSON round-trip mutation: the serde derives skip constructor
    /// validation, so corrupting the tree builds otherwise-unbuildable
    /// structures for negative tests.
    fn mutate<T, F>(value: &T, f: F) -> T
    where
        T: serde::Serialize + serde::Deserialize,
        F: FnOnce(&mut Value),
    {
        let text = serde_json::to_string(value).expect("serializes");
        let mut tree = serde_json::from_str_value(&text).expect("parses");
        f(&mut tree);
        let text = serde_json::to_string(&tree).expect("re-serializes");
        serde_json::from_str(&text).expect("deserializes")
    }

    fn field<'a>(v: &'a mut Value, key: &str) -> &'a mut Value {
        match v {
            Value::Object(entries) => entries
                .iter_mut()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .expect("object key present"),
            _ => panic!("not an object"),
        }
    }

    fn item(v: &mut Value, idx: usize) -> &mut Value {
        match v {
            Value::Array(items) => &mut items[idx],
            _ => panic!("not an array"),
        }
    }

    #[test]
    fn corrupted_folding_fires_df001() {
        let (g, cfg, _) = cnv_setup();
        // Corrupt conv1's PE to a non-divisor of its 64 filters.
        let bad = mutate(&cfg, |v| {
            let pe = field(item(item(field(v, "entries"), 0), 1), "pe");
            *pe = Value::U64(5);
        });
        let report = verify_dataflow(&g, &bad, None, LintConfig::default());
        assert!(report.has_errors());
        assert!(report.fired("DF001"));
    }

    #[test]
    fn stream_width_mismatch_fires_df002() {
        let (_, _, accel) = cnv_setup();
        // Corrupt the first SWU's stream width out from under its consumer.
        let bad = mutate(&accel, |v| {
            let simd = field(
                field(field(item(field(v, "modules"), 0), "kind"), "Swu"),
                "simd",
            );
            assert_eq!(simd.as_u64(), Some(3));
            *simd = Value::U64(4);
        });
        let mut diag = Diagnostics::new();
        check_accelerator(&bad, &mut diag);
        let report = diag.into_report(bad.name());
        assert!(report.has_errors());
        assert!(report.fired("DF002"));
    }

    #[test]
    fn debug_guard_accepts_clean_accelerator() {
        let (_, _, accel) = cnv_setup();
        debug_assert_accelerator(&accel, "test");
    }
}
