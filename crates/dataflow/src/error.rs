//! Error types for dataflow compilation.

use adaflow_model::ModelError;
use adaflow_pruning::PruneError;
use thiserror::Error;

/// Errors produced while compiling a graph to a dataflow accelerator or
/// configuring one at runtime.
#[derive(Debug, Clone, PartialEq, Error)]
#[non_exhaustive]
pub enum DataflowError {
    /// The folding configuration is missing an entry for an MVTU layer.
    #[error("no folding entry for layer {0}")]
    MissingFolding(String),

    /// The graph contains a structure the mapper cannot lower.
    #[error("cannot map layer {layer}: {reason}")]
    Unmappable {
        /// Offending layer name.
        layer: String,
        /// Why it cannot be mapped.
        reason: String,
    },

    /// A runtime channel configuration is illegal for this accelerator.
    #[error("illegal runtime configuration: {0}")]
    BadConfiguration(String),

    /// Underlying graph error.
    #[error(transparent)]
    Model(#[from] ModelError),

    /// Underlying folding-config error.
    #[error(transparent)]
    Prune(#[from] PruneError),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DataflowError>();
    }

    #[test]
    fn messages_are_lowercase() {
        let e = DataflowError::MissingFolding("conv1".into());
        assert_eq!(e.to_string(), "no folding entry for layer conv1");
    }
}
