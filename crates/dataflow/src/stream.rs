//! Streaming pipeline simulation.
//!
//! The original flow measures performance with Verilator RTL simulation; we
//! stand in with a synchronous-dataflow simulation of the module pipeline:
//! each module is a server with a deterministic per-frame service time (its
//! cycle count), connected by finite FIFOs with back-pressure. The simulator
//! computes exact frame completion times from the recurrence
//!
//! ```text
//! t[i][f] = max(t[i-1][f],        // data available from upstream
//!               t[i][f-1],        // module busy with previous frame
//!               t[i+1][f-depth])  // downstream FIFO full (back-pressure)
//!           + cycles[i]
//! ```
//!
//! which reproduces pipelined execution with fill latency and steady-state
//! initiation interval, and exposes buffering effects the closed-form
//! analysis hides.

use crate::accel::DataflowAccelerator;
use serde::{Deserialize, Serialize};

/// Summary statistics of a simulated streaming run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamStats {
    /// Number of frames pushed through the pipeline.
    pub frames: usize,
    /// Cycle at which the last frame left the pipeline.
    pub makespan_cycles: u64,
    /// Completion time of the first frame (pipeline fill latency).
    pub first_frame_cycles: u64,
    /// Observed steady-state initiation interval (cycles between the last
    /// two frame completions; equals the makespan for a single frame).
    pub observed_ii: u64,
    /// Throughput over the whole run at the given clock.
    pub throughput_fps: f64,
}

/// Finite-FIFO synchronous-dataflow simulator.
#[derive(Debug, Clone)]
pub struct StreamSimulator {
    cycles: Vec<u64>,
    fifo_depth: usize,
    clock_hz: u64,
}

impl StreamSimulator {
    /// Builds a simulator for an accelerator's module pipeline with the
    /// given inter-module FIFO depth (frames of slack; FINN inserts small
    /// stream FIFOs between layers — depth 2 is the common configuration).
    ///
    /// # Panics
    ///
    /// Panics if `fifo_depth` is zero.
    #[must_use]
    pub fn new(accel: &DataflowAccelerator, fifo_depth: usize) -> Self {
        assert!(fifo_depth > 0, "fifo depth must be nonzero");
        Self {
            cycles: accel
                .modules()
                .iter()
                .map(super::module::ModuleSpec::cycles_per_frame)
                .collect(),
            fifo_depth,
            clock_hz: accel.clock_hz(),
        }
    }

    /// Builds a simulator from raw per-module cycle counts (for tests and
    /// what-if analysis).
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is empty, any count is zero, or `fifo_depth` is
    /// zero.
    #[must_use]
    pub fn from_cycles(cycles: Vec<u64>, fifo_depth: usize, clock_hz: u64) -> Self {
        assert!(!cycles.is_empty(), "pipeline needs at least one module");
        assert!(
            cycles.iter().all(|&c| c > 0),
            "module cycles must be nonzero"
        );
        assert!(fifo_depth > 0, "fifo depth must be nonzero");
        Self {
            cycles,
            fifo_depth,
            clock_hz,
        }
    }

    /// Simulates `frames` frames entering back-to-back and returns the
    /// completion statistics.
    ///
    /// # Panics
    ///
    /// Panics if `frames` is zero.
    #[must_use]
    pub fn run(&self, frames: usize) -> StreamStats {
        assert!(frames > 0, "simulate at least one frame");
        let n = self.cycles.len();
        // t[i][f]: completion cycle of frame f at module i. Keep a sliding
        // window of `fifo_depth + 1` frames to bound memory.
        let window = self.fifo_depth + 1;
        let mut history: Vec<Vec<u64>> = vec![vec![0; n]; window];
        let mut first_frame = 0u64;
        let mut last_two = [0u64; 2];
        for f in 0..frames {
            let mut current = vec![0u64; n];
            for i in 0..n {
                let upstream = if i == 0 { 0 } else { current[i - 1] };
                let busy = if f == 0 {
                    0
                } else {
                    history[(f - 1) % window][i]
                };
                let backpressure = if i + 1 < n && f >= self.fifo_depth {
                    history[(f - self.fifo_depth) % window][i + 1]
                } else {
                    0
                };
                current[i] = upstream.max(busy).max(backpressure) + self.cycles[i];
            }
            let done = current[n - 1];
            if f == 0 {
                first_frame = done;
            }
            last_two = [last_two[1], done];
            history[f % window] = current;
        }
        let makespan = last_two[1];
        let observed_ii = if frames >= 2 {
            last_two[1] - last_two[0]
        } else {
            makespan
        };
        StreamStats {
            frames,
            makespan_cycles: makespan,
            first_frame_cycles: first_frame,
            observed_ii,
            throughput_fps: frames as f64 * self.clock_hz as f64 / makespan as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::AcceleratorKind;
    use adaflow_model::prelude::*;
    use adaflow_pruning::FinnConfig;

    #[test]
    fn single_module_pipeline() {
        let sim = StreamSimulator::from_cycles(vec![10], 2, 1_000);
        let s = sim.run(5);
        assert_eq!(s.makespan_cycles, 50);
        assert_eq!(s.first_frame_cycles, 10);
        assert_eq!(s.observed_ii, 10);
    }

    #[test]
    fn balanced_pipeline_fills_then_streams() {
        let sim = StreamSimulator::from_cycles(vec![10, 10, 10], 2, 1_000);
        let s = sim.run(4);
        // Fill 30 cycles, then one frame every 10.
        assert_eq!(s.first_frame_cycles, 30);
        assert_eq!(s.makespan_cycles, 60);
        assert_eq!(s.observed_ii, 10);
    }

    #[test]
    fn bottleneck_sets_steady_state_ii() {
        let sim = StreamSimulator::from_cycles(vec![5, 40, 5], 2, 1_000);
        let s = sim.run(20);
        assert_eq!(s.observed_ii, 40);
        // Makespan ≈ fill + (n-1)·II.
        assert_eq!(s.makespan_cycles, 50 + 19 * 40);
    }

    #[test]
    fn fifo_depth_trades_slack_for_ii() {
        // Frame-granular back-pressure: with depth-1 FIFOs a producer must
        // wait for the consumer's *completion*, which serializes neighbours
        // and inflates the II past the bottleneck (45 = 40 + 5 here). Depth
        // 2 restores the bottleneck-limited steady state — which is why the
        // compiled accelerators simulate with depth 2 (FINN's default
        // inter-layer FIFO sizing).
        let shallow = StreamSimulator::from_cycles(vec![5, 40, 5], 1, 1_000).run(50);
        let depth2 = StreamSimulator::from_cycles(vec![5, 40, 5], 2, 1_000).run(50);
        let deep = StreamSimulator::from_cycles(vec![5, 40, 5], 64, 1_000).run(50);
        assert_eq!(shallow.observed_ii, 45);
        assert_eq!(depth2.observed_ii, 40);
        assert_eq!(deep.observed_ii, 40);
    }

    #[test]
    fn backpressure_with_slow_tail() {
        // Slow last module: depth-1 FIFOs stall the whole chain on its
        // completion (II = 100 + 1); depth 2 hides the handoff.
        let shallow = StreamSimulator::from_cycles(vec![1, 1, 100], 1, 1_000).run(10);
        assert_eq!(shallow.observed_ii, 101);
        let depth2 = StreamSimulator::from_cycles(vec![1, 1, 100], 2, 1_000).run(10);
        assert_eq!(depth2.observed_ii, 100);
    }

    #[test]
    fn simulation_matches_analytical_ii_for_cnv() {
        let g = topology::cnv_w2a2_cifar10().expect("builds");
        let cfg = FinnConfig::cnv_reference(&g).expect("valid");
        let accel = crate::accel::DataflowAccelerator::compile(&g, &cfg, AcceleratorKind::Finn)
            .expect("compiles");
        let sim = StreamSimulator::new(&accel, 2);
        let stats = sim.run(16);
        assert_eq!(stats.observed_ii, accel.initiation_interval());
        // Sustained throughput approaches the analytical value from below.
        assert!(stats.throughput_fps <= accel.throughput_fps());
        assert!(stats.throughput_fps > accel.throughput_fps() * 0.8);
    }

    #[test]
    fn throughput_uses_clock() {
        let s = StreamSimulator::from_cycles(vec![100], 1, 100_000_000).run(100);
        // 100 frames x 100 cycles at 100 MHz -> 1e6 FPS.
        assert!((s.throughput_fps - 1_000_000.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "module cycles must be nonzero")]
    fn zero_cycle_module_rejected() {
        let _ = StreamSimulator::from_cycles(vec![10, 0], 1, 1_000);
    }
}
