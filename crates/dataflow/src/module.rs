//! Hardware module descriptors and cycle models.
//!
//! FINN lowers each CNN layer to a dedicated streaming module:
//!
//! * convolutions become a Sliding Window Unit (SWU) feeding a
//!   Matrix-Vector-Threshold Unit (MVTU);
//! * fully-connected layers become a standalone MVTU;
//! * max-pool layers become channel-unrolled pooling modules;
//! * the classifier output becomes a LabelSelect module.
//!
//! Each module's steady-state cycles-per-frame follow FINN's folding
//! arithmetic: an MVTU with `rows x cols` weight matrix folded onto
//! `PE x SIMD` hardware needs `(rows/PE)·(cols/SIMD)` cycles per output
//! vector, times the number of output pixels per frame.

use serde::{Deserialize, Serialize};

/// Which hardware template a module instantiates, with its parameters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModuleKind {
    /// Sliding Window Unit: streams convolution windows to the MVTU.
    Swu {
        /// Input channels.
        in_channels: usize,
        /// Kernel side length.
        kernel: usize,
        /// Output pixels per frame.
        out_pixels: usize,
        /// SIMD lanes of the consumer MVTU (window stream width).
        simd: usize,
        /// Activation bit width on the stream.
        act_bits: u8,
    },
    /// Matrix-Vector-Threshold Unit: the MAC engine of conv and dense
    /// layers, with folded thresholds.
    Mvtu {
        /// Weight-matrix rows (output channels / neurons).
        rows: usize,
        /// Weight-matrix columns (`k²·ch_in` for conv, `in_features` for
        /// dense).
        cols: usize,
        /// Processing elements (row parallelism).
        pe: usize,
        /// SIMD lanes (column parallelism).
        simd: usize,
        /// Output vectors per frame (spatial positions; 1 for dense).
        out_pixels: usize,
        /// Weight bit width.
        weight_bits: u8,
        /// Activation bit width.
        act_bits: u8,
        /// Threshold levels folded into the unit (0 for the classifier).
        threshold_levels: usize,
    },
    /// Channel-unrolled max-pooling.
    MaxPool {
        /// Channels processed in parallel (unroll factor = worst case).
        channels: usize,
        /// Pooling window side.
        kernel: usize,
        /// Input pixels per frame (the module consumes the stream at line
        /// rate).
        in_pixels: usize,
        /// Activation bit width.
        act_bits: u8,
    },
    /// Top-1 selection over the classifier output.
    LabelSelect {
        /// Number of classes.
        classes: usize,
    },
}

impl ModuleKind {
    /// Short template name (diagnostics / reports).
    #[must_use]
    pub fn template(&self) -> &'static str {
        match self {
            ModuleKind::Swu { .. } => "swu",
            ModuleKind::Mvtu { .. } => "mvtu",
            ModuleKind::MaxPool { .. } => "maxpool",
            ModuleKind::LabelSelect { .. } => "labelselect",
        }
    }
}

/// One instantiated module of a dataflow accelerator.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModuleSpec {
    /// Module instance name (derived from the layer name).
    pub name: String,
    /// Template and parameters.
    pub kind: ModuleKind,
    /// Whether this instance uses the runtime-controllable Flexible HLS
    /// template (paper §IV-A2).
    pub flexible: bool,
}

/// Relative cycle overhead of the flexible MVTU template: the
/// runtime-controllable bound only affects pipeline feeding (Fig. 3a), so
/// the penalty is small. Calibrated with [`FLEX_POOL_CYCLE_OVERHEAD`] so the
/// whole-accelerator latency overhead lands on the paper's 0.67 % average
/// (≤ 3.7 % max).
pub const FLEX_MVTU_CYCLE_OVERHEAD: f64 = 0.005;

/// Relative cycle overhead of flexible channel-unrolled modules (MaxPool):
/// the worst-case unroll plus per-cycle channel gating costs slightly more.
pub const FLEX_POOL_CYCLE_OVERHEAD: f64 = 0.02;

impl ModuleSpec {
    /// Steady-state cycles this module needs per frame.
    ///
    /// The flexible variants carry their calibrated cycle overhead.
    #[must_use]
    pub fn cycles_per_frame(&self) -> u64 {
        let base = match &self.kind {
            ModuleKind::Swu {
                in_channels,
                kernel,
                out_pixels,
                simd,
                ..
            } => {
                // The SWU emits one `SIMD`-wide slice of each k²·ch_in window
                // per cycle, matching the consumer MVTU's intake rate.
                let window = kernel * kernel * in_channels;
                (*out_pixels as u64) * (window as u64).div_ceil(*simd as u64)
            }
            ModuleKind::Mvtu {
                rows,
                cols,
                pe,
                simd,
                out_pixels,
                ..
            } => {
                let fold =
                    (*rows as u64).div_ceil(*pe as u64) * (*cols as u64).div_ceil(*simd as u64);
                fold * (*out_pixels as u64)
            }
            ModuleKind::MaxPool { in_pixels, .. } => {
                // Channel-unrolled: consumes one input pixel vector per cycle.
                *in_pixels as u64
            }
            ModuleKind::LabelSelect { classes } => *classes as u64,
        };
        if self.flexible {
            let overhead = match &self.kind {
                ModuleKind::MaxPool { .. } => FLEX_POOL_CYCLE_OVERHEAD,
                _ => FLEX_MVTU_CYCLE_OVERHEAD,
            };
            ((base as f64) * (1.0 + overhead)).ceil() as u64
        } else {
            base
        }
    }

    /// Total weight storage bits of this module (MVTUs only).
    #[must_use]
    pub fn weight_storage_bits(&self) -> u64 {
        match &self.kind {
            ModuleKind::Mvtu {
                rows,
                cols,
                weight_bits,
                ..
            } => (*rows as u64) * (*cols as u64) * u64::from(*weight_bits),
            _ => 0,
        }
    }

    /// MAC operations per frame (MVTUs only).
    #[must_use]
    pub fn macs_per_frame(&self) -> u64 {
        match &self.kind {
            ModuleKind::Mvtu {
                rows,
                cols,
                out_pixels,
                ..
            } => (*rows as u64) * (*cols as u64) * (*out_pixels as u64),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mvtu(rows: usize, cols: usize, pe: usize, simd: usize, pixels: usize) -> ModuleSpec {
        ModuleSpec {
            name: "m".into(),
            kind: ModuleKind::Mvtu {
                rows,
                cols,
                pe,
                simd,
                out_pixels: pixels,
                weight_bits: 2,
                act_bits: 2,
                threshold_levels: 3,
            },
            flexible: false,
        }
    }

    #[test]
    fn mvtu_fold_arithmetic() {
        // CNV conv2: 64x(9·64) folded on 16x8 over 784 pixels.
        let m = mvtu(64, 576, 16, 8, 784);
        assert_eq!(m.cycles_per_frame(), 4 * 72 * 784);
    }

    #[test]
    fn mvtu_dense_single_pixel() {
        let m = mvtu(512, 256, 4, 8, 1);
        assert_eq!(m.cycles_per_frame(), 128 * 32);
    }

    #[test]
    fn mvtu_non_divisible_rounds_up() {
        // 10 rows on 4 PEs -> 3 row groups.
        let m = mvtu(10, 8, 4, 8, 1);
        assert_eq!(m.cycles_per_frame(), 3);
    }

    #[test]
    fn swu_matches_consumer_rate() {
        let m = ModuleSpec {
            name: "swu".into(),
            kind: ModuleKind::Swu {
                in_channels: 64,
                kernel: 3,
                out_pixels: 784,
                simd: 8,
                act_bits: 2,
            },
            flexible: false,
        };
        assert_eq!(m.cycles_per_frame(), 784 * 72);
    }

    #[test]
    fn pool_consumes_at_line_rate() {
        let m = ModuleSpec {
            name: "pool".into(),
            kind: ModuleKind::MaxPool {
                channels: 64,
                kernel: 2,
                in_pixels: 784,
                act_bits: 2,
            },
            flexible: false,
        };
        assert_eq!(m.cycles_per_frame(), 784);
    }

    #[test]
    fn flexible_overhead_is_small_and_positive() {
        let fixed = mvtu(64, 576, 16, 8, 784);
        let mut flex = fixed.clone();
        flex.flexible = true;
        let (cf, cx) = (fixed.cycles_per_frame(), flex.cycles_per_frame());
        assert!(cx > cf);
        let rel = (cx - cf) as f64 / cf as f64;
        assert!(
            rel < 0.037,
            "flexible overhead {rel} exceeds the paper's 3.7% bound"
        );
    }

    #[test]
    fn weight_storage_counts_bits() {
        let m = mvtu(64, 576, 16, 8, 784);
        assert_eq!(m.weight_storage_bits(), 64 * 576 * 2);
        let pool = ModuleSpec {
            name: "p".into(),
            kind: ModuleKind::MaxPool {
                channels: 4,
                kernel: 2,
                in_pixels: 16,
                act_bits: 2,
            },
            flexible: false,
        };
        assert_eq!(pool.weight_storage_bits(), 0);
    }

    #[test]
    fn macs_per_frame() {
        let m = mvtu(64, 576, 16, 8, 784);
        assert_eq!(m.macs_per_frame(), 64 * 576 * 784);
    }

    #[test]
    fn template_names() {
        assert_eq!(mvtu(1, 1, 1, 1, 1).kind.template(), "mvtu");
        assert_eq!(
            ModuleKind::LabelSelect { classes: 10 }.template(),
            "labelselect"
        );
    }
}
