//! Property-based tests on the streaming model and folding arithmetic.

use adaflow_dataflow::{size_fifos, AcceleratorKind, DataflowAccelerator, StreamSimulator};
use adaflow_model::prelude::*;
use adaflow_pruning::FinnConfig;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For any pipeline with depth-2 FIFOs, the observed steady-state II is
    /// the bottleneck module's cycle count, and the makespan follows the
    /// classic fill + (n-1)·II law once the prefix of the bottleneck is
    /// accounted for.
    #[test]
    fn stream_ii_is_bottleneck(
        cycles in proptest::collection::vec(1u64..500, 1..8),
        frames in 2usize..32,
    ) {
        let bottleneck = *cycles.iter().max().expect("nonempty");
        let sim = StreamSimulator::from_cycles(cycles.clone(), 2, 1_000_000);
        let stats = sim.run(frames);
        prop_assert_eq!(stats.observed_ii, bottleneck);
        // Fill latency is at least the sum of module cycles.
        let fill: u64 = cycles.iter().sum();
        prop_assert!(stats.first_frame_cycles >= fill);
        // Makespan bounded below by the bottleneck serving every frame and
        // above by fully serial execution.
        prop_assert!(stats.makespan_cycles >= bottleneck * frames as u64);
        prop_assert!(stats.makespan_cycles <= fill * frames as u64);
    }

    /// Deeper FIFOs never hurt: makespan is non-increasing in depth.
    #[test]
    fn deeper_fifos_never_slower(
        cycles in proptest::collection::vec(1u64..200, 2..6),
        depth in 1usize..6,
    ) {
        let shallow = StreamSimulator::from_cycles(cycles.clone(), depth, 1_000).run(24);
        let deep = StreamSimulator::from_cycles(cycles, depth + 1, 1_000).run(24);
        prop_assert!(deep.makespan_cycles <= shallow.makespan_cycles);
    }

    /// Compiled accelerators: throughput in FPS equals clock / II, and the
    /// streaming simulation at the sized FIFO depth reaches exactly that II.
    #[test]
    fn sized_pipeline_reaches_analytic_throughput(
        classes in 2usize..8,
        w1 in proptest::bool::ANY,
    ) {
        let quant = if w1 { QuantSpec::w1a2() } else { QuantSpec::w2a2() };
        let graph = topology::tiny(quant, classes).expect("builds");
        let cfg = FinnConfig::auto(&graph).expect("auto");
        let accel =
            DataflowAccelerator::compile(&graph, &cfg, AcceleratorKind::Finn).expect("compiles");
        let sizing = size_fifos(&accel);
        prop_assert_eq!(sizing.achieved_ii, accel.initiation_interval());
        let fps = accel.clock_hz() as f64 / accel.initiation_interval() as f64;
        prop_assert!((accel.throughput_fps() - fps).abs() < 1e-9);
    }

    /// Flexible compilation never loses modules, and every flexible module's
    /// cycles are >= its fixed counterpart's (the calibrated overhead).
    #[test]
    fn flexible_cycles_dominate_fixed(classes in 2usize..8) {
        let graph = topology::tiny(QuantSpec::w2a2(), classes).expect("builds");
        let cfg = FinnConfig::auto(&graph).expect("auto");
        let fixed = DataflowAccelerator::compile(&graph, &cfg, AcceleratorKind::FixedPruning)
            .expect("compiles");
        let flex = DataflowAccelerator::compile(&graph, &cfg, AcceleratorKind::FlexiblePruning)
            .expect("compiles");
        prop_assert_eq!(fixed.modules().len(), flex.modules().len());
        for (f, x) in fixed.modules().iter().zip(flex.modules()) {
            prop_assert!(x.cycles_per_frame() >= f.cycles_per_frame(), "module {}", f.name);
        }
    }
}
