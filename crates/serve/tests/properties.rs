//! Property-based tests of the serve-queue invariants.
//!
//! The engine's telemetry stream is the witness: every admission, shed,
//! batch close and completion is an event, so request conservation, FIFO
//! order and determinism are checked on the *observable* record rather
//! than on engine internals.

use adaflow::PressureSignal;
use adaflow_dataflow::AcceleratorKind;
use adaflow_edge::{Scenario, ServingState, WorkloadSpec};
use adaflow_hls::{PowerModel, ResourceEstimate};
use adaflow_serve::prelude::*;
use adaflow_telemetry::{Event, EventKind, SinkHandle};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// A scripted policy: constant throughput, optional periodic stalls.
struct ConstPolicy {
    fps: f64,
    stall_every: usize,
    stall_s: f64,
    calls: usize,
}

impl ServePolicy for ConstPolicy {
    fn name(&self) -> &str {
        "const"
    }

    fn on_pressure(&mut self, _now: f64, _signal: &PressureSignal) -> ServingState {
        self.calls += 1;
        let switch = self.stall_every > 0 && self.calls.is_multiple_of(self.stall_every);
        ServingState {
            throughput_fps: self.fps,
            stall_s: if switch { self.stall_s } else { 0.0 },
            accuracy: 80.0,
            power: PowerModel::new(ResourceEstimate {
                lut: 50_000,
                ff: 50_000,
                bram36: 100,
                dsp: 0,
            }),
            activity: 1.0,
            model: "const".into(),
            accelerator: AcceleratorKind::Finn,
            model_switched: switch,
            reconfigured: switch,
        }
    }
}

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        devices: 5,
        fps_per_device: 24.0,
        duration_s: 4.0,
        scenario: Scenario::Unpredictable,
    }
}

fn overflow(choice: u8) -> OverflowPolicy {
    match choice % 3 {
        0 => OverflowPolicy::Block,
        1 => OverflowPolicy::ShedOldest,
        _ => OverflowPolicy::ShedNewest,
    }
}

/// Runs one recorded simulation, returning `(summary, events)`.
fn recorded_run(
    config: ServeConfig,
    seed: u64,
    fps: f64,
    stall_every: usize,
    stall_s: f64,
) -> (ServeSummary, Vec<Event>) {
    let (sink, recorder) = SinkHandle::recorder(1 << 18);
    let engine = ServeEngine::new(config).with_sink(sink);
    let mut policy = ConstPolicy {
        fps,
        stall_every,
        stall_s,
        calls: 0,
    };
    let summary = engine.run(&spec(), seed, &mut policy);
    (summary, recorder.drain())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// No request is lost or duplicated: ids are enqueued at most once,
    /// completed at most once, never both completed and shed, and the
    /// final tally matches the summary exactly.
    #[test]
    fn no_request_lost_or_duplicated(
        seed in 0u64..1_000,
        fps in 20.0f64..800.0,
        cap in 4usize..128,
        choice in 0u8..3,
        stall_every in 0usize..6,
    ) {
        let config = ServeConfig {
            queue_capacity: cap,
            overflow: overflow(choice),
            control_period_s: 0.05,
            ..ServeConfig::default()
        };
        let (summary, events) = recorded_run(config, seed, fps, stall_every, 0.08);
        let mut enqueued = BTreeSet::new();
        let mut completed = BTreeSet::new();
        let mut shed = BTreeSet::new();
        for e in &events {
            match &e.kind {
                EventKind::RequestEnqueued { id, .. } => {
                    prop_assert!(enqueued.insert(*id), "id {id} enqueued twice");
                }
                EventKind::RequestCompleted { id, .. } => {
                    prop_assert!(completed.insert(*id), "id {id} completed twice");
                    prop_assert!(enqueued.contains(id), "id {id} completed unseen");
                }
                EventKind::RequestShed { id, .. } => {
                    prop_assert!(shed.insert(*id), "id {id} shed twice");
                }
                _ => {}
            }
        }
        prop_assert!(completed.is_disjoint(&shed), "id both completed and shed");
        prop_assert_eq!(completed.len() as f64, summary.completed);
        prop_assert_eq!(shed.len() as f64, summary.shed);
        prop_assert!(summary.conservation_holds(),
            "arrived {} != completed {} + shed {}",
            summary.arrived, summary.completed, summary.shed);
        // Every enqueued request left the queue one way or the other
        // (the engine drains before returning).
        let drained: BTreeSet<_> = completed.union(&shed).copied().collect();
        prop_assert!(enqueued.is_subset(&drained), "request stuck in queue");
    }

    /// FIFO: the queue never reorders, so completions happen in id
    /// (= arrival) order.
    #[test]
    fn completions_preserve_fifo_order(
        seed in 0u64..1_000,
        fps in 20.0f64..800.0,
        cap in 4usize..128,
        choice in 0u8..3,
        max_batch in 1usize..40,
    ) {
        let config = ServeConfig {
            queue_capacity: cap,
            overflow: overflow(choice),
            max_batch,
            ..ServeConfig::default()
        };
        let (_, events) = recorded_run(config, seed, fps, 0, 0.0);
        let mut last: Option<u64> = None;
        for e in &events {
            if let EventKind::RequestCompleted { id, .. } = e.kind {
                if let Some(prev) = last {
                    prop_assert!(id > prev, "completion order regressed: {prev} then {id}");
                }
                last = Some(id);
            }
        }
    }

    /// Conservation holds at every event boundary: requests in the system
    /// (enqueued − completed − shed-after-admission) never go negative and
    /// never exceed queue capacity plus one in-flight batch.
    #[test]
    fn prefix_conservation_bounds(
        seed in 0u64..1_000,
        fps in 20.0f64..800.0,
        cap in 4usize..128,
        choice in 0u8..3,
        max_batch in 1usize..40,
        stall_every in 0usize..6,
    ) {
        let config = ServeConfig {
            queue_capacity: cap,
            overflow: overflow(choice),
            max_batch,
            control_period_s: 0.05,
            ..ServeConfig::default()
        };
        let (_, events) = recorded_run(config, seed, fps, stall_every, 0.05);
        let mut enqueued = BTreeSet::new();
        let mut in_system = 0i64;
        for e in &events {
            match &e.kind {
                EventKind::RequestEnqueued { id, .. } => {
                    enqueued.insert(*id);
                    in_system += 1;
                }
                EventKind::RequestCompleted { .. } => in_system -= 1,
                // Only sheds of previously-admitted requests drain the
                // system; a blocked arrival never entered it.
                EventKind::RequestShed { id, .. } if enqueued.contains(id) => {
                    in_system -= 1;
                }
                _ => {}
            }
            prop_assert!(in_system >= 0, "more departures than admissions");
            prop_assert!(
                in_system <= (cap + max_batch) as i64,
                "in-system {in_system} exceeds queue {cap} + batch {max_batch}"
            );
        }
        prop_assert_eq!(in_system, 0, "engine returned with requests in flight");
    }

    /// Determinism: the same seed yields a bit-identical event log and
    /// summary, and the multi-seed experiment mean is identical for 1, 2
    /// and N worker threads.
    #[test]
    fn same_seed_same_event_log(
        seed in 0u64..1_000,
        fps in 20.0f64..800.0,
        choice in 0u8..3,
    ) {
        let config = ServeConfig {
            queue_capacity: 32,
            overflow: overflow(choice),
            ..ServeConfig::default()
        };
        let (s1, e1) = recorded_run(config.clone(), seed, fps, 3, 0.05);
        let (s2, e2) = recorded_run(config, seed, fps, 3, 0.05);
        prop_assert_eq!(s1, s2);
        prop_assert_eq!(e1, e2);
    }

    /// Span trees are well-formed for every random config × seed — each
    /// completed request yields exactly one tree with a live root, nested
    /// intervals and no orphans — and the waterfall's per-stage durations
    /// sum to the end-to-end latency, exactly per trace and up to
    /// floating-point noise in the aggregate.
    #[test]
    fn span_forest_well_formed_and_waterfall_tiles(
        seed in 0u64..1_000,
        fps in 20.0f64..800.0,
        cap in 4usize..128,
        choice in 0u8..3,
        stall_every in 0usize..6,
    ) {
        use adaflow_telemetry::{SpanRecord, Stage, TraceForest, Waterfall};
        let config = ServeConfig {
            queue_capacity: cap,
            overflow: overflow(choice),
            control_period_s: 0.05,
            ..ServeConfig::default()
        };
        let (summary, events) = recorded_run(config, seed, fps, stall_every, 0.08);
        let forest = TraceForest::from_events(&events);
        prop_assert!(forest.validate().is_ok(), "invalid forest: {:?}", forest.validate());
        prop_assert_eq!(forest.len() as f64, summary.completed, "one trace per completion");
        for trace in &forest.traces {
            let root = trace.root().expect("validated");
            let leaf_sum: f64 = Stage::LEAVES
                .iter()
                .map(|stage| {
                    trace
                        .spans
                        .iter()
                        .find(|r| r.span == stage.span_id())
                        .map_or(0.0, SpanRecord::duration_s)
                })
                .sum();
            prop_assert!((leaf_sum - root.duration_s()).abs() < 1e-9,
                "trace {}: stages must tile end-to-end", trace.id.0);
        }
        let waterfall = Waterfall::from_forest(&forest, 3);
        prop_assert_eq!(waterfall.traces as f64, summary.completed);
        prop_assert!(waterfall.attribution_residual_s < 1e-9,
            "stage means drifted from the end-to-end mean: {:e}",
            waterfall.attribution_residual_s);
    }

    /// Batch sizes respect the configured maximum, and every batch-closed
    /// size is covered by matching completions.
    #[test]
    fn batches_bounded_and_accounted(
        seed in 0u64..1_000,
        fps in 50.0f64..800.0,
        max_batch in 1usize..40,
    ) {
        let config = ServeConfig {
            max_batch,
            ..ServeConfig::default()
        };
        let (summary, events) = recorded_run(config, seed, fps, 0, 0.0);
        let mut batched = 0u64;
        for e in &events {
            if let EventKind::BatchClosed { size, oldest_wait_s, .. } = e.kind {
                prop_assert!(size >= 1 && size <= max_batch as u64);
                prop_assert!(oldest_wait_s >= -1e-9);
                batched += size;
            }
        }
        prop_assert_eq!(batched as f64, summary.completed,
            "batched requests must all complete");
    }
}
