//! Admission-queue edge cases: capacity-0 and capacity-1 queues under
//! every overflow policy, checked end-to-end through the serving engine's
//! telemetry record — request conservation holds and each dropped request
//! is shed exactly once.

use adaflow::PressureSignal;
use adaflow_dataflow::AcceleratorKind;
use adaflow_edge::{Scenario, ServingState, WorkloadSpec};
use adaflow_hls::{PowerModel, ResourceEstimate};
use adaflow_serve::prelude::*;
use adaflow_telemetry::{Event, EventKind, SinkHandle};
use std::collections::{BTreeMap, BTreeSet};

/// A constant-throughput policy (no switches, no stalls).
struct Const(f64);

impl ServePolicy for Const {
    fn name(&self) -> &str {
        "const"
    }

    fn on_pressure(&mut self, _now: f64, _signal: &PressureSignal) -> ServingState {
        ServingState {
            throughput_fps: self.0,
            stall_s: 0.0,
            accuracy: 80.0,
            power: PowerModel::new(ResourceEstimate {
                lut: 50_000,
                ff: 50_000,
                bram36: 100,
                dsp: 0,
            }),
            activity: 1.0,
            model: "const".into(),
            accelerator: AcceleratorKind::Finn,
            model_switched: false,
            reconfigured: false,
        }
    }
}

const POLICIES: [OverflowPolicy; 3] = [
    OverflowPolicy::Block,
    OverflowPolicy::ShedOldest,
    OverflowPolicy::ShedNewest,
];

fn spec() -> WorkloadSpec {
    WorkloadSpec {
        devices: 4,
        fps_per_device: 30.0,
        duration_s: 3.0,
        scenario: Scenario::Unpredictable,
    }
}

fn recorded_run(capacity: usize, overflow: OverflowPolicy, fps: f64) -> (ServeSummary, Vec<Event>) {
    let (sink, recorder) = SinkHandle::recorder(1 << 16);
    let engine = ServeEngine::new(ServeConfig {
        queue_capacity: capacity,
        overflow,
        ..ServeConfig::default()
    })
    .with_sink(sink);
    let summary = engine.run(&spec(), 7, &mut Const(fps));
    (summary, recorder.drain())
}

/// Per-id shed counts from the event log.
fn shed_counts(events: &[Event]) -> BTreeMap<u64, usize> {
    let mut counts = BTreeMap::new();
    for e in events {
        if let EventKind::RequestShed { id, .. } = e.kind {
            *counts.entry(id).or_insert(0) += 1;
        }
    }
    counts
}

fn completed_ids(events: &[Event]) -> BTreeSet<u64> {
    events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::RequestCompleted { id, .. } => Some(id),
            _ => None,
        })
        .collect()
}

#[test]
fn capacity_zero_sheds_entire_stream_under_every_policy() {
    for overflow in POLICIES {
        let (summary, events) = recorded_run(0, overflow, 500.0);
        assert!(summary.arrived > 0.0, "{overflow:?}: workload generated");
        assert_eq!(
            summary.shed, summary.arrived,
            "{overflow:?}: every arrival is shed"
        );
        assert_eq!(summary.completed, 0.0, "{overflow:?}: nothing serves");
        assert!(summary.conservation_holds(), "{overflow:?}");

        // Exactly one shed event per dropped request, all with the
        // policy's reason, and no enqueue/complete/batch activity at all.
        let counts = shed_counts(&events);
        assert_eq!(counts.len() as f64, summary.shed, "{overflow:?}");
        assert!(
            counts.values().all(|&n| n == 1),
            "{overflow:?}: a request shed more than once"
        );
        for e in &events {
            match &e.kind {
                EventKind::RequestShed { reason, .. } => {
                    assert_eq!(reason, overflow.shed_reason(), "{overflow:?}");
                }
                EventKind::RequestEnqueued { .. }
                | EventKind::BatchClosed { .. }
                | EventKind::RequestCompleted { .. } => {
                    panic!("{overflow:?}: unexpected event {:?}", e.kind)
                }
                _ => {}
            }
        }
    }
}

#[test]
fn capacity_one_conserves_under_every_policy() {
    for overflow in POLICIES {
        // 120 FPS offered into a single-slot queue at 40 FPS service:
        // heavy overflow, every policy must exercise its eviction path.
        let (summary, events) = recorded_run(1, overflow, 40.0);
        assert!(summary.shed > 0.0, "{overflow:?}: overload must shed");
        assert!(summary.completed > 0.0, "{overflow:?}: some work serves");
        assert!(summary.conservation_holds(), "{overflow:?}");

        let counts = shed_counts(&events);
        let completed = completed_ids(&events);
        assert_eq!(
            counts.len() as f64,
            summary.shed,
            "{overflow:?}: one shed event per dropped request"
        );
        assert!(
            counts.values().all(|&n| n == 1),
            "{overflow:?}: duplicate shed events"
        );
        assert!(
            counts.keys().all(|id| !completed.contains(id)),
            "{overflow:?}: an id both shed and completed"
        );
        assert_eq!(completed.len() as f64, summary.completed, "{overflow:?}");
        // Ids partition: every generated request either completed or shed.
        assert_eq!(
            (counts.len() + completed.len()) as f64,
            summary.arrived,
            "{overflow:?}: shed ∪ completed covers all arrivals"
        );
    }
}

#[test]
fn capacity_one_batches_are_singletons() {
    for overflow in POLICIES {
        let (_, events) = recorded_run(1, overflow, 40.0);
        for e in &events {
            if let EventKind::BatchClosed { size, .. } = e.kind {
                assert_eq!(size, 1, "{overflow:?}: a 1-slot queue cannot batch");
            }
        }
    }
}

#[test]
fn single_slot_displacement_evicts_the_sole_occupant() {
    // Deterministic micro-check below the engine: with one slot, the
    // occupant is simultaneously the oldest and the newest queued
    // request, so both displacement policies evict it and the newcomer
    // survives. (Capacity-2 head/tail selection is covered by the queue's
    // unit tests.)
    for overflow in [OverflowPolicy::ShedOldest, OverflowPolicy::ShedNewest] {
        let mut q = AdmissionQueue::new(1, overflow);
        assert!(matches!(
            q.offer(Request {
                id: 0,
                device: 0,
                arrival_s: 0.0
            }),
            Admission::Enqueued { depth: 1 }
        ));
        match q.offer(Request {
            id: 1,
            device: 0,
            arrival_s: 0.1,
        }) {
            Admission::Displaced { victim, depth } => {
                assert_eq!(victim.id, 0, "{overflow:?}");
                assert_eq!(depth, 1);
            }
            other => panic!("{overflow:?}: expected displacement, got {other:?}"),
        }
        let survivor = q.take_batch(1);
        assert_eq!(survivor.len(), 1);
        assert_eq!(survivor[0].id, 1, "{overflow:?}: newcomer survives");
    }
}
