//! Multi-run serving experiments.
//!
//! The request-level counterpart of `adaflow_edge::Experiment`: runs seeded
//! serving simulations in parallel (order-preserving sharding, so the mean
//! is bit-identical for any worker count) and averages the summaries.

use crate::config::ServeConfig;
use crate::engine::ServeEngine;
use crate::policy::{AdaFlowServePolicy, FixedMaxPolicy, FlexibleOnlyPolicy, ServePolicy};
use crate::summary::ServeSummary;
use adaflow::{Library, RuntimeConfig};
use adaflow_edge::{Experiment, WorkloadSpec};
use adaflow_telemetry::SinkHandle;

/// A repeated, seeded serving experiment over one library and workload.
#[derive(Debug, Clone)]
pub struct ServeExperiment<'l> {
    library: &'l Library,
    workload: WorkloadSpec,
    config: ServeConfig,
    runs: usize,
    base_seed: u64,
    threads: usize,
}

impl<'l> ServeExperiment<'l> {
    /// Creates an experiment with the paper's defaults: 100 runs, seed 1,
    /// default serving configuration, one worker per core.
    #[must_use]
    pub fn new(library: &'l Library, workload: WorkloadSpec) -> Self {
        Self {
            library,
            workload,
            config: ServeConfig::default(),
            runs: 100,
            base_seed: 1,
            threads: 0,
        }
    }

    /// Adapts a fluid-level experiment: same library, workload and seeding,
    /// so request-level results sit next to the frame-level tables.
    #[must_use]
    pub fn from_edge(experiment: &Experiment<'l>) -> Self {
        Self {
            library: experiment.library(),
            workload: experiment.workload().clone(),
            config: ServeConfig::default(),
            runs: experiment.run_count(),
            base_seed: experiment.base_seed(),
            threads: 0,
        }
    }

    /// Sets the number of seeded repetitions.
    #[must_use]
    pub fn runs(mut self, runs: usize) -> Self {
        assert!(runs > 0, "need at least one run");
        self.runs = runs;
        self
    }

    /// Sets the base seed (run `i` uses `base_seed + i`).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Sets the worker-thread count for sharding runs (`0` = one per
    /// core). Results are identical for any value — sharding preserves
    /// order.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Overrides the serving configuration.
    #[must_use]
    pub fn config(mut self, config: ServeConfig) -> Self {
        self.config = config;
        self
    }

    /// The serving configuration in effect.
    #[must_use]
    pub fn serve_config(&self) -> &ServeConfig {
        &self.config
    }

    /// Runs the experiment with a policy factory (one fresh policy per
    /// run) and returns the averaged summary.
    pub fn run_with<F>(&self, make_policy: F) -> ServeSummary
    where
        F: Fn() -> Box<dyn ServePolicy + 'l> + Sync,
    {
        let seeds: Vec<u64> = (0..self.runs as u64).map(|i| self.base_seed + i).collect();
        let engine = ServeEngine::new(self.config.clone());
        let all = adaflow_nn::parallel::par_map(&seeds, self.threads, |&seed| {
            let mut policy = make_policy();
            engine.run(&self.workload, seed, policy.as_mut())
        });
        ServeSummary::mean(&all).expect("at least one run")
    }

    /// Averaged summary of the request-level AdaFlow policy (deadline-aware
    /// reconfiguration guard enabled with the experiment's deadline).
    #[must_use]
    pub fn run_adaflow(&self, config: RuntimeConfig) -> ServeSummary {
        let library = self.library;
        let deadline_s = self.config.deadline_s;
        self.run_with(move || {
            Box::new(AdaFlowServePolicy::new(library, config.clone()).with_deadline(deadline_s))
        })
    }

    /// Averaged summary of the static fixed-max baseline.
    #[must_use]
    pub fn run_fixed_max(&self) -> ServeSummary {
        let library = self.library;
        self.run_with(move || Box::new(FixedMaxPolicy::new(library)))
    }

    /// Averaged summary of the flexible-only policy.
    #[must_use]
    pub fn run_flexible_only(&self, config: RuntimeConfig) -> ServeSummary {
        let library = self.library;
        self.run_with(move || Box::new(FlexibleOnlyPolicy::new(library, config.clone())))
    }

    /// One traced run: a single seed with a telemetry sink attached, for
    /// the CLI's trace exports.
    pub fn run_traced<F>(&self, seed: u64, sink: SinkHandle, make_policy: F) -> ServeSummary
    where
        F: FnOnce() -> Box<dyn ServePolicy + 'l>,
    {
        let engine = ServeEngine::new(self.config.clone()).with_sink(sink);
        let mut policy = make_policy();
        engine.run(&self.workload, seed, policy.as_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaflow::LibraryGenerator;
    use adaflow_edge::Scenario;
    use adaflow_model::prelude::*;
    use adaflow_nn::DatasetKind;

    fn library() -> Library {
        LibraryGenerator::default_edge_setup()
            .generate(
                &topology::cnv_w2a2_cifar10().expect("builds"),
                DatasetKind::Cifar10,
            )
            .expect("generates")
    }

    #[test]
    fn mean_is_identical_for_any_thread_count() {
        let lib = library();
        let exp = ServeExperiment::new(&lib, WorkloadSpec::paper_edge(Scenario::Stable)).runs(4);
        let serial = exp.clone().threads(1).run_fixed_max();
        let two = exp.clone().threads(2).run_fixed_max();
        let auto = exp.threads(0).run_fixed_max();
        assert_eq!(serial, two);
        assert_eq!(serial, auto);
    }

    #[test]
    fn from_edge_inherits_setup() {
        let lib = library();
        let edge = Experiment::new(&lib, WorkloadSpec::paper_edge(Scenario::Shifting))
            .runs(7)
            .seed(42);
        let serve = ServeExperiment::from_edge(&edge);
        assert_eq!(serve.runs, 7);
        assert_eq!(serve.base_seed, 42);
        assert_eq!(serve.workload, *edge.workload());
    }

    #[test]
    fn adaflow_serves_scenario_1_well() {
        let lib = library();
        let exp = ServeExperiment::new(&lib, WorkloadSpec::paper_edge(Scenario::Stable)).runs(3);
        let s = exp.run_adaflow(RuntimeConfig::default());
        assert!(s.conservation_holds());
        assert!(
            s.deadline_hit_pct > 90.0,
            "scenario 1 hit {}",
            s.deadline_hit_pct
        );
    }
}
