//! The request model: what arrives, what leaves.
//!
//! The fluid simulator in `adaflow-edge` conserves *frame mass*; this layer
//! conserves *individual requests*. Every request is identified by a
//! monotonic id assigned at generation time, so loss and duplication are
//! detectable invariant violations rather than rounding noise.

use serde::{Deserialize, Serialize};

/// One inference request offered by an IoT device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Monotonic id, unique within one serving run and assigned in global
    /// arrival order (ties broken by device index).
    pub id: u64,
    /// Originating device index, `0..devices`.
    pub device: u32,
    /// Arrival instant on the simulation clock, seconds.
    pub arrival_s: f64,
}

/// Per-request latency decomposition of a completed request.
///
/// `latency_s == queue_wait_s + batch_wait_s + service_s` up to floating
/// point: time in the admission queue until the batch closed, time from
/// batch close to service start (the reconfiguration / weight-reload stall
/// charged to the batch), and time being served.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompletedRequest {
    /// The request id assigned at generation time.
    pub id: u64,
    /// Originating device index.
    pub device: u32,
    /// Arrival instant, seconds.
    pub arrival_s: f64,
    /// Time spent queued before the dynamic batcher closed its batch.
    pub queue_wait_s: f64,
    /// Time between batch close and service start (switch stalls).
    pub batch_wait_s: f64,
    /// The reconfiguration-stall portion of `batch_wait_s`; the remainder
    /// is coordinator deferral while the batch waited for a drain slot.
    pub stall_s: f64,
    /// Time being served as part of its batch.
    pub service_s: f64,
    /// End-to-end sojourn time, arrival to completion.
    pub latency_s: f64,
    /// Whether the sojourn fit inside the deadline budget.
    pub deadline_met: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_json() {
        let r = Request {
            id: 42,
            device: 7,
            arrival_s: 1.25,
        };
        let text = serde_json::to_string(&r).expect("serializes");
        let back: Request = serde_json::from_str(&text).expect("parses");
        assert_eq!(r, back);
    }

    #[test]
    fn completed_request_decomposition_is_consistent() {
        let c = CompletedRequest {
            id: 1,
            device: 0,
            arrival_s: 0.0,
            queue_wait_s: 0.01,
            batch_wait_s: 0.0,
            stall_s: 0.0,
            service_s: 0.02,
            latency_s: 0.03,
            deadline_met: true,
        };
        let total = c.queue_wait_s + c.batch_wait_s + c.service_s;
        assert!((total - c.latency_s).abs() < 1e-12);
        assert!(c.stall_s <= c.batch_wait_s);
    }
}
