//! The deterministic discrete-event serving engine.
//!
//! A single-server queueing system on a pure simulation clock: requests
//! arrive per the generated trace, pass admission control into the bounded
//! FIFO queue, get grouped by the dynamic batcher and served at the
//! currently-loaded accelerator's throughput. Three event sources drive the
//! loop — batch completions, batch closes and arrivals — processed in
//! global time order with the tie priority *completion < close < arrival*
//! (finish work before starting more, start work before accepting more).
//!
//! The per-device mechanics (queue, batcher, pressure EWMA, deadline
//! accounting) live in [`DeviceCore`](crate::device::DeviceCore); this
//! module is the single-device event loop over one core. The fleet layer
//! (`adaflow-fleet`) interleaves many cores on one clock with the same
//! tie discipline.
//!
//! ## Batching
//!
//! A batch closes when the server is idle and either the queue holds
//! `max_batch` requests or the oldest queued request has waited
//! `max_wait_s`. The whole batch is served as one unit for
//! `size / throughput_fps` seconds and completes at once — the granularity
//! at which `adaflow_nn::BatchRunner` consumes work.
//!
//! ## Pressure-driven control
//!
//! At batch close (rate-limited to one consultation per
//! `control_period_s`), the policy sees a [`PressureSignal`]: the EWMA of
//! observed inter-arrival rates plus the backlog spread over the drain
//! horizon. No oracle workload knowledge enters the loop.
//!
//! ## Drain, not drop
//!
//! Switch and reconfiguration stalls delay the *start* of the next batch;
//! queued requests persist through them (they may shed later only by
//! overflow, never by the switch itself), and an in-flight batch always
//! completes under the state it started with — switches happen strictly
//! between batches. At the end of the trace the engine keeps closing
//! batches until the queue is empty, so every arrival is accounted for:
//! `arrived == completed + shed` with nothing in flight.

use crate::arrivals::generate_requests;
use crate::config::ServeConfig;
use crate::device::DeviceCore;
use crate::policy::ServePolicy;
use crate::request::{CompletedRequest, Request};
use crate::summary::ServeSummary;
use adaflow_edge::WorkloadSpec;
use adaflow_telemetry::SinkHandle;

#[cfg(test)]
use adaflow::PressureSignal;

/// Which event source fires next (discriminant doubles as tie priority).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Next {
    Completion = 0,
    Close = 1,
    Arrival = 2,
}

/// The serving engine: configuration plus an optional telemetry sink.
#[derive(Debug, Clone, Default)]
pub struct ServeEngine {
    config: ServeConfig,
    sink: SinkHandle,
}

impl ServeEngine {
    /// Creates an engine over a serving configuration.
    #[must_use]
    pub fn new(config: ServeConfig) -> Self {
        Self {
            config,
            sink: SinkHandle::default(),
        }
    }

    /// Attaches a telemetry sink receiving the full request lifecycle
    /// (`RequestEnqueued`, `BatchClosed`, `RequestCompleted`,
    /// `RequestShed`).
    #[must_use]
    pub fn with_sink(mut self, sink: SinkHandle) -> Self {
        self.sink = sink;
        self
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Runs one seeded serving simulation to completion (trace exhausted
    /// and queue drained) and returns the run summary.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (`max_batch == 0`,
    /// non-positive `ewma_tau_s` or `drain_target_s`).
    pub fn run(
        &self,
        spec: &WorkloadSpec,
        seed: u64,
        policy: &mut dyn ServePolicy,
    ) -> ServeSummary {
        let requests = generate_requests(spec, seed);
        self.serve_trace(spec, &requests, policy)
    }

    /// Like [`run`](Self::run), but also returns the per-request latency
    /// decomposition of every completed request (completion order).
    pub fn run_detailed(
        &self,
        spec: &WorkloadSpec,
        seed: u64,
        policy: &mut dyn ServePolicy,
    ) -> (ServeSummary, Vec<CompletedRequest>) {
        let requests = generate_requests(spec, seed);
        let mut details = Vec::new();
        let summary = self.serve_loop(spec, &requests, policy, &mut details);
        (summary, details)
    }

    fn serve_trace(
        &self,
        spec: &WorkloadSpec,
        requests: &[Request],
        policy: &mut dyn ServePolicy,
    ) -> ServeSummary {
        let mut sink_details = Vec::new();
        self.serve_loop(spec, requests, policy, &mut sink_details)
    }

    fn serve_loop(
        &self,
        spec: &WorkloadSpec,
        requests: &[Request],
        policy: &mut dyn ServePolicy,
        details: &mut Vec<CompletedRequest>,
    ) -> ServeSummary {
        // Observed arrival-rate EWMA seed: the operator's nominal estimate
        // (fleet size × per-device rate) until arrivals teach it.
        let initial_rate = if self.config.initial_rate_fps > 0.0 {
            self.config.initial_rate_fps
        } else {
            spec.nominal_fps()
        };
        let mut device = DeviceCore::new(self.config.clone(), initial_rate);
        let mut next_arrival = 0usize;
        let mut now = 0.0f64;

        loop {
            // Candidate events; the close candidate exists only while the
            // server is idle (batches form when it can accept work).
            let t_completion = device.next_completion_s();
            let t_close = device.next_close_s(now);
            let t_arrival = requests.get(next_arrival).map(|r| r.arrival_s);

            let mut chosen: Option<(f64, Next)> = None;
            for (t, kind) in [
                (t_completion, Next::Completion),
                (t_close, Next::Close),
                (t_arrival, Next::Arrival),
            ] {
                if let Some(t) = t {
                    let better = match chosen {
                        None => true,
                        Some((bt, _)) => t.total_cmp(&bt).is_lt(),
                    };
                    if better {
                        chosen = Some((t, kind));
                    }
                }
            }
            let Some((t, kind)) = chosen else {
                break; // trace exhausted, queue drained, server idle
            };
            now = t;

            match kind {
                Next::Completion => {
                    let before = details.len();
                    device.complete(now, &self.sink, details);
                    crate::tracing::emit_request_traces(&self.sink, &details[before..], 0, false);
                }
                Next::Close => {
                    // Single device: the drain (if any) starts immediately.
                    device.close_batch(now, policy, &self.sink, &mut |close_now, _| close_now);
                }
                Next::Arrival => {
                    let request = requests[next_arrival];
                    next_arrival += 1;
                    device.offer(request, now, &self.sink);
                }
            }
        }

        let (stats, latency) = device.finish();
        debug_assert_eq!(stats.arrived, stats.completed + stats.shed, "conservation");
        debug_assert_eq!(
            stats.batched_requests, stats.completed,
            "every batched request completes"
        );

        ServeSummary::from_device(policy.name(), &stats, &latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::OverflowPolicy;
    use adaflow_dataflow::AcceleratorKind;
    use adaflow_edge::{Scenario, ServingState};
    use adaflow_hls::{PowerModel, ResourceEstimate};
    use adaflow_telemetry::EventKind;

    /// A constant-throughput scripted policy.
    struct ConstPolicy {
        fps: f64,
        stall_every: usize,
        stall_s: f64,
        calls: usize,
    }

    impl ConstPolicy {
        fn new(fps: f64) -> Self {
            Self {
                fps,
                stall_every: 0,
                stall_s: 0.0,
                calls: 0,
            }
        }
    }

    impl ServePolicy for ConstPolicy {
        fn name(&self) -> &str {
            "const"
        }

        fn on_pressure(&mut self, _now: f64, _signal: &PressureSignal) -> ServingState {
            self.calls += 1;
            let switch = self.stall_every > 0 && self.calls.is_multiple_of(self.stall_every);
            ServingState {
                throughput_fps: self.fps,
                stall_s: if switch { self.stall_s } else { 0.0 },
                accuracy: 80.0,
                power: PowerModel::new(ResourceEstimate {
                    lut: 50_000,
                    ff: 50_000,
                    bram36: 100,
                    dsp: 0,
                }),
                activity: 1.0,
                model: "const".into(),
                accelerator: AcceleratorKind::Finn,
                model_switched: switch,
                reconfigured: switch,
            }
        }
    }

    fn small_spec() -> WorkloadSpec {
        WorkloadSpec {
            devices: 4,
            fps_per_device: 25.0,
            duration_s: 5.0,
            scenario: Scenario::Stable,
        }
    }

    #[test]
    fn conservation_and_drain_hold() {
        let engine = ServeEngine::new(ServeConfig::default());
        let mut policy = ConstPolicy::new(500.0);
        let s = engine.run(&small_spec(), 1, &mut policy);
        assert!(s.arrived > 0.0);
        assert!(s.conservation_holds());
        assert_eq!(s.shed, 0.0, "ample capacity sheds nothing");
        assert_eq!(s.completed, s.arrived);
    }

    #[test]
    fn overload_sheds_and_misses() {
        let engine = ServeEngine::new(ServeConfig {
            queue_capacity: 8,
            ..ServeConfig::default()
        });
        // 100 FPS offered, 20 FPS served: the queue must overflow.
        let mut policy = ConstPolicy::new(20.0);
        let s = engine.run(&small_spec(), 1, &mut policy);
        assert!(s.conservation_holds());
        assert!(s.shed > 0.0, "overload must shed");
        assert!(s.deadline_hit_pct < 100.0);
    }

    #[test]
    fn deterministic_in_seed() {
        let engine = ServeEngine::new(ServeConfig::default());
        let a = engine.run(&small_spec(), 9, &mut ConstPolicy::new(300.0));
        let b = engine.run(&small_spec(), 9, &mut ConstPolicy::new(300.0));
        assert_eq!(a, b);
        let c = engine.run(&small_spec(), 10, &mut ConstPolicy::new(300.0));
        assert_ne!(a, c);
    }

    #[test]
    fn stalls_count_into_batch_wait() {
        let engine = ServeEngine::new(ServeConfig {
            control_period_s: 0.0, // consult at every close
            ..ServeConfig::default()
        });
        let mut policy = ConstPolicy::new(500.0);
        policy.stall_every = 3;
        policy.stall_s = 0.05;
        let (s, details) = engine.run_detailed(&small_spec(), 2, &mut policy);
        assert!(s.reconfigurations > 0.0);
        assert!(s.stall_total_s > 0.0);
        assert!(
            details.iter().any(|d| d.batch_wait_s > 0.04),
            "stalled batches must surface in batch_wait"
        );
        // Decomposition adds up.
        for d in &details {
            let total = d.queue_wait_s + d.batch_wait_s + d.service_s;
            assert!((total - d.latency_s).abs() < 1e-9);
        }
    }

    #[test]
    fn batches_respect_max_size_and_wait() {
        let cfg = ServeConfig {
            max_batch: 4,
            max_wait_s: 0.01,
            ..ServeConfig::default()
        };
        let engine = ServeEngine::new(cfg);
        let (s, details) = engine.run_detailed(&small_spec(), 3, &mut ConstPolicy::new(400.0));
        assert!(s.mean_batch_size <= 4.0 + 1e-9);
        // No request waits in the queue much past max_wait when the server
        // keeps up (service of a full batch is 10 ms at 400 FPS).
        let worst_wait = details.iter().map(|d| d.queue_wait_s).fold(0.0, f64::max);
        assert!(worst_wait < 0.05, "worst queue wait {worst_wait}");
    }

    #[test]
    fn telemetry_lifecycle_is_complete() {
        let (sink, recorder) = SinkHandle::recorder(1 << 16);
        let engine = ServeEngine::new(ServeConfig::default()).with_sink(sink);
        let s = engine.run(&small_spec(), 4, &mut ConstPolicy::new(500.0));
        let events = recorder.drain();
        let enq = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::RequestEnqueued { .. }))
            .count() as f64;
        let done = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::RequestCompleted { .. }))
            .count() as f64;
        assert_eq!(enq, s.arrived - s.shed);
        assert_eq!(done, s.completed);
    }

    #[test]
    fn emitted_span_forest_is_well_formed_and_tiles_latency() {
        use adaflow_telemetry::{SpanRecord, Stage, TraceForest};
        let (sink, recorder) = SinkHandle::recorder(1 << 16);
        let engine = ServeEngine::new(ServeConfig {
            control_period_s: 0.0,
            ..ServeConfig::default()
        })
        .with_sink(sink);
        let mut policy = ConstPolicy::new(400.0);
        policy.stall_every = 3;
        policy.stall_s = 0.05;
        let s = engine.run(&small_spec(), 5, &mut policy);
        let forest = TraceForest::from_events(&recorder.drain());
        forest.validate().expect("span trees well-formed");
        assert_eq!(forest.len() as f64, s.completed, "one trace per completion");
        for trace in &forest.traces {
            let root = trace.root().expect("root span");
            let leaf_sum: f64 = Stage::LEAVES
                .iter()
                .map(|stage| {
                    trace
                        .spans
                        .iter()
                        .find(|r| r.span == stage.span_id())
                        .map_or(0.0, SpanRecord::duration_s)
                })
                .sum();
            assert!(
                (leaf_sum - root.duration_s()).abs() < 1e-9,
                "stage sums tile the root"
            );
            assert!(
                trace.spans.iter().all(|r| r.span != Stage::Route.span_id()),
                "single-device traces carry no route span"
            );
        }
    }

    #[test]
    fn empty_workload_yields_zero_summary() {
        let spec = WorkloadSpec {
            devices: 2,
            fps_per_device: 0.0,
            duration_s: 5.0,
            scenario: Scenario::Stable,
        };
        let engine = ServeEngine::new(ServeConfig::default());
        let s = engine.run(&spec, 1, &mut ConstPolicy::new(100.0));
        assert_eq!(s.arrived, 0.0);
        assert_eq!(s.completed, 0.0);
        assert!(s.conservation_holds());
    }

    #[test]
    fn shed_oldest_keeps_newest_work() {
        let engine = ServeEngine::new(ServeConfig {
            queue_capacity: 8,
            overflow: OverflowPolicy::ShedOldest,
            ..ServeConfig::default()
        });
        let mut policy = ConstPolicy::new(20.0);
        let s = engine.run(&small_spec(), 1, &mut policy);
        assert!(s.conservation_holds());
        assert!(s.shed > 0.0);
    }
}
