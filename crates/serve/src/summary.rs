//! Run summaries: the serving-layer counterpart of `RunMetrics`.

use crate::device::DeviceStats;
use adaflow_telemetry::LogHistogram;
use serde::{Deserialize, Serialize};

/// Aggregated outcome of one serving run (or the field-wise mean of many).
///
/// Counts are `f64` so multi-run means stay exact in field order (the same
/// convention as `adaflow_edge::RunMetrics`); a single run always holds
/// integral values. Conservation `arrived == completed + shed` holds at the
/// end of every run — the engine drains its queue before returning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeSummary {
    /// Policy that produced the run.
    pub policy: String,
    /// Requests offered by the workload.
    pub arrived: f64,
    /// Requests served to completion.
    pub completed: f64,
    /// Requests shed by admission control.
    pub shed: f64,
    /// Completed requests that met the deadline.
    pub deadline_hits: f64,
    /// Deadline hits as a percentage of *arrived* requests (a shed request
    /// is a miss — the client got nothing).
    pub deadline_hit_pct: f64,
    /// Shed requests as a percentage of arrivals.
    pub shed_pct: f64,
    /// Mean end-to-end latency over completed requests, seconds.
    pub latency_mean_s: f64,
    /// Median end-to-end latency, seconds.
    pub latency_p50_s: f64,
    /// 95th-percentile end-to-end latency, seconds.
    pub latency_p95_s: f64,
    /// 99th-percentile end-to-end latency, seconds.
    pub latency_p99_s: f64,
    /// Mean time in the admission queue before batch close, seconds.
    pub queue_wait_mean_s: f64,
    /// Mean time between batch close and service start (stalls), seconds.
    pub batch_wait_mean_s: f64,
    /// Mean service time, seconds.
    pub service_mean_s: f64,
    /// Batches closed.
    pub batches: f64,
    /// Mean batch size, requests.
    pub mean_batch_size: f64,
    /// Model switches performed by the policy.
    pub model_switches: f64,
    /// Model switches served by the flexible fabric (weight reloads).
    pub flexible_switches: f64,
    /// Full FPGA reconfigurations.
    pub reconfigurations: f64,
    /// Total service suspension charged by switches, seconds.
    pub stall_total_s: f64,
    /// Request-weighted mean TOP-1 accuracy of the serving models, percent.
    pub mean_accuracy_pct: f64,
}

impl ServeSummary {
    /// Builds a summary from accumulated device counters plus a latency
    /// histogram.
    ///
    /// This is the single summary constructor shared by the DES engine and
    /// the live TCP server (`adaflow-net`): both accumulate the same
    /// [`DeviceStats`], so their numbers land in identical fields and are
    /// directly comparable in EXPERIMENTS.md.
    #[must_use]
    pub fn from_device(policy: &str, stats: &DeviceStats, latency: &LogHistogram) -> Self {
        let completed_f = stats.completed as f64;
        let arrived_f = stats.arrived as f64;
        ServeSummary {
            policy: policy.to_string(),
            arrived: arrived_f,
            completed: completed_f,
            shed: stats.shed as f64,
            deadline_hits: stats.deadline_hits as f64,
            deadline_hit_pct: 100.0 * stats.deadline_hits as f64 / arrived_f.max(1.0),
            shed_pct: 100.0 * stats.shed as f64 / arrived_f.max(1.0),
            latency_mean_s: stats.latency_sum_s / completed_f.max(1.0),
            latency_p50_s: latency.p50(),
            latency_p95_s: latency.p95(),
            latency_p99_s: latency.p99(),
            queue_wait_mean_s: stats.queue_wait_sum_s / completed_f.max(1.0),
            batch_wait_mean_s: stats.batch_wait_sum_s / completed_f.max(1.0),
            service_mean_s: stats.service_sum_s / completed_f.max(1.0),
            batches: stats.batches as f64,
            mean_batch_size: stats.batched_requests as f64 / (stats.batches as f64).max(1.0),
            model_switches: stats.model_switches as f64,
            flexible_switches: stats.flexible_switches as f64,
            reconfigurations: stats.reconfigurations as f64,
            stall_total_s: stats.stall_total_s,
            mean_accuracy_pct: stats.accuracy_sum_pct / completed_f.max(1.0),
        }
    }

    /// Field-wise mean over per-seed runs (policy label from the first).
    ///
    /// Returns `None` on an empty slice. Percentile fields average the
    /// per-run percentiles — the fleet-operator view (expected per-run tail),
    /// not a pooled percentile.
    #[must_use]
    pub fn mean(runs: &[Self]) -> Option<Self> {
        let first = runs.first()?;
        let n = runs.len() as f64;
        let avg = |field: fn(&Self) -> f64| runs.iter().map(field).sum::<f64>() / n;
        Some(Self {
            policy: first.policy.clone(),
            arrived: avg(|r| r.arrived),
            completed: avg(|r| r.completed),
            shed: avg(|r| r.shed),
            deadline_hits: avg(|r| r.deadline_hits),
            deadline_hit_pct: avg(|r| r.deadline_hit_pct),
            shed_pct: avg(|r| r.shed_pct),
            latency_mean_s: avg(|r| r.latency_mean_s),
            latency_p50_s: avg(|r| r.latency_p50_s),
            latency_p95_s: avg(|r| r.latency_p95_s),
            latency_p99_s: avg(|r| r.latency_p99_s),
            queue_wait_mean_s: avg(|r| r.queue_wait_mean_s),
            batch_wait_mean_s: avg(|r| r.batch_wait_mean_s),
            service_mean_s: avg(|r| r.service_mean_s),
            batches: avg(|r| r.batches),
            mean_batch_size: avg(|r| r.mean_batch_size),
            model_switches: avg(|r| r.model_switches),
            flexible_switches: avg(|r| r.flexible_switches),
            reconfigurations: avg(|r| r.reconfigurations),
            stall_total_s: avg(|r| r.stall_total_s),
            mean_accuracy_pct: avg(|r| r.mean_accuracy_pct),
        })
    }

    /// Whether request conservation holds: every arrival is accounted for
    /// as a completion or a shed.
    #[must_use]
    pub fn conservation_holds(&self) -> bool {
        (self.arrived - self.completed - self.shed).abs() < 1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(x: f64) -> ServeSummary {
        ServeSummary {
            policy: "adaflow".into(),
            arrived: 100.0 + x,
            completed: 90.0 + x,
            shed: 10.0,
            deadline_hits: 80.0,
            deadline_hit_pct: 80.0,
            shed_pct: 10.0,
            latency_mean_s: 0.05 * (1.0 + x),
            latency_p50_s: 0.04,
            latency_p95_s: 0.09,
            latency_p99_s: 0.12,
            queue_wait_mean_s: 0.02,
            batch_wait_mean_s: 0.001,
            service_mean_s: 0.03,
            batches: 10.0,
            mean_batch_size: 9.0 + x,
            model_switches: 3.0,
            flexible_switches: 2.0,
            reconfigurations: 1.0,
            stall_total_s: 0.145,
            mean_accuracy_pct: 84.2,
        }
    }

    #[test]
    fn mean_averages_field_wise() {
        let m = ServeSummary::mean(&[sample(0.0), sample(2.0)]).expect("nonempty");
        assert_eq!(m.arrived, 101.0);
        assert_eq!(m.completed, 91.0);
        assert_eq!(m.mean_batch_size, 10.0);
        assert_eq!(m.policy, "adaflow");
    }

    #[test]
    fn mean_of_empty_is_none() {
        assert!(ServeSummary::mean(&[]).is_none());
    }

    #[test]
    fn conservation_check() {
        let ok = sample(0.0);
        assert!(ok.conservation_holds());
        let bad = ServeSummary {
            completed: 50.0,
            ..sample(0.0)
        };
        assert!(!bad.conservation_holds());
    }

    #[test]
    fn summary_round_trips_through_json() {
        let s = sample(1.0);
        let text = serde_json::to_string(&s).expect("serializes");
        let back: ServeSummary = serde_json::from_str(&text).expect("parses");
        assert_eq!(s, back);
    }
}
