//! Per-device arrival generation.
//!
//! Turns the piecewise-constant aggregate workload of
//! [`adaflow_edge::WorkloadSpec`] into a timestamped request stream: each of
//! the 20 IoT devices contributes an equal share of every segment's rate as
//! a jittered quasi-periodic process (cameras emit frames on a nominal
//! period, smeared by capture and network jitter). Generation is
//! deterministic in the seed — the same seed that shapes the workload
//! segments also shapes the per-device jitter, so one `(spec, seed)` pair
//! pins the entire request trace bit-for-bit.

use crate::request::Request;
use adaflow_edge::WorkloadSpec;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Inter-arrival jitter: each gap is the nominal period scaled by
/// `U(1 − JITTER, 1 + JITTER)`.
pub const ARRIVAL_JITTER: f64 = 0.5;

/// Generates the timestamped request trace for one seeded run.
///
/// Each device walks the workload segments emitting arrivals at its share
/// of the segment rate (`segment.fps / devices`), with quasi-periodic
/// jittered gaps. Segments with zero rate silence the device until the
/// next active segment, where its phase is re-drawn uniformly inside one
/// period. The merged trace is sorted by `(arrival, device)` and ids are
/// assigned in that order.
#[must_use]
pub fn generate_requests(spec: &WorkloadSpec, seed: u64) -> Vec<Request> {
    let segments = spec.generate(seed);
    let devices = spec.devices.max(1);
    let mut all: Vec<(f64, u32)> = Vec::new();
    for device in 0..devices as u32 {
        // A device-private stream, decorrelated from the segment-level rng
        // and from every other device by a multiplicative mix of the index.
        let mut rng = ChaCha8Rng::seed_from_u64(
            seed ^ 0x5E12_7E5C ^ u64::from(device).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let mut t = f64::NEG_INFINITY;
        for seg in &segments {
            let end = seg.start_s + seg.duration_s;
            let rate = seg.fps / devices as f64;
            if rate <= 0.0 {
                continue;
            }
            let period = 1.0 / rate;
            if t < seg.start_s {
                // Fresh phase after a silent stretch (or at the start),
                // uniform inside one period so devices don't phase-lock.
                t = seg.start_s + period * rng.gen_range(0.0..=1.0);
            }
            while t < end {
                all.push((t, device));
                t += period * rng.gen_range(1.0 - ARRIVAL_JITTER..=1.0 + ARRIVAL_JITTER);
            }
        }
    }
    all.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    all.into_iter()
        .enumerate()
        .map(|(i, (arrival_s, device))| Request {
            id: i as u64,
            device,
            arrival_s,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaflow_edge::Scenario;

    #[test]
    fn trace_is_sorted_with_sequential_ids() {
        let spec = WorkloadSpec::paper_edge(Scenario::Shifting);
        let reqs = generate_requests(&spec, 7);
        assert!(!reqs.is_empty());
        for (i, pair) in reqs.windows(2).enumerate() {
            assert!(pair[0].arrival_s <= pair[1].arrival_s, "unsorted at {i}");
        }
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.id, i as u64);
            assert!((r.device as usize) < spec.devices);
            assert!(r.arrival_s >= 0.0 && r.arrival_s < spec.duration_s);
        }
    }

    #[test]
    fn rate_matches_workload_within_jitter() {
        let spec = WorkloadSpec::paper_edge(Scenario::Stable);
        let reqs = generate_requests(&spec, 3);
        // 600 FPS nominal over 25 s, deviation ±30 %: the request count must
        // land inside the deviation envelope with slack for edge effects.
        let n = reqs.len() as f64;
        assert!((600.0 * 25.0 * 0.6..600.0 * 25.0 * 1.4).contains(&n), "{n}");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = WorkloadSpec::paper_edge(Scenario::Unpredictable);
        assert_eq!(generate_requests(&spec, 11), generate_requests(&spec, 11));
        assert_ne!(generate_requests(&spec, 11), generate_requests(&spec, 12));
    }

    #[test]
    fn all_devices_contribute() {
        let spec = WorkloadSpec::paper_edge(Scenario::Stable);
        let reqs = generate_requests(&spec, 1);
        let mut seen = vec![false; spec.devices];
        for r in &reqs {
            seen[r.device as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "silent device in a 30 FPS trace");
    }

    #[test]
    fn zero_rate_workload_is_empty() {
        let spec = WorkloadSpec {
            devices: 4,
            fps_per_device: 0.0,
            duration_s: 10.0,
            scenario: Scenario::Stable,
        };
        assert!(generate_requests(&spec, 1).is_empty());
    }
}
