//! The per-device serving core: one bounded queue, one dynamic batcher,
//! one policy-controlled accelerator.
//!
//! [`DeviceCore`] is the single-server state machine that
//! [`ServeEngine`](crate::engine::ServeEngine) runs one of and the fleet
//! layer (`adaflow-fleet`) runs N of. It owns everything local to a
//! device — admission queue, in-flight batch, observed-pressure EWMA,
//! control-period rate limiting, per-request deadline accounting — and
//! exposes *event candidates* (`next_completion_s`, `next_close_s`)
//! instead of a run loop, so a caller can interleave any number of cores
//! on one global simulation clock in deterministic time order.
//!
//! The semantics are exactly the single-device engine's (see
//! `crate::engine` for the event model): batches close only while the
//! server is idle, switch stalls delay the start of the next batch
//! without dropping queued work, and an in-flight batch always completes
//! under the state it started with. The only extension is the pluggable
//! *drain gate* on [`DeviceCore::close_batch`]: a fleet-level
//! reconfiguration coordinator can postpone the start of a stall window
//! (staggering fabric switches across devices); the single-device engine
//! passes the identity gate (drain starts immediately).

use crate::config::ServeConfig;
use crate::policy::ServePolicy;
use crate::queue::{Admission, AdmissionQueue};
use crate::request::{CompletedRequest, Request};
use adaflow::PressureSignal;
use adaflow_edge::ServingState;
use adaflow_telemetry::{EventKind, LogHistogram, SinkHandle};

/// Absolute slack for deadline and timer comparisons, seconds.
pub(crate) const TIME_EPS: f64 = 1e-9;

/// A batch in service.
struct InFlight {
    members: Vec<Request>,
    close_s: f64,
    drain_start_s: f64,
    start_s: f64,
    service_s: f64,
    done_s: f64,
    accuracy: f64,
}

/// Running counters of one device core (integral during a run; exposed as
/// plain integers/sums so callers can build whatever summary they need).
#[derive(Debug, Clone, Default)]
pub struct DeviceStats {
    /// Requests offered to this device.
    pub arrived: u64,
    /// Requests served to completion.
    pub completed: u64,
    /// Requests shed by admission control.
    pub shed: u64,
    /// Completed requests that met the deadline.
    pub deadline_hits: u64,
    /// Batches closed.
    pub batches: u64,
    /// Requests across all closed batches.
    pub batched_requests: u64,
    /// Model switches performed by the policy.
    pub model_switches: u64,
    /// Model switches served by the flexible fabric (weight reloads).
    pub flexible_switches: u64,
    /// Full FPGA reconfigurations.
    pub reconfigurations: u64,
    /// Total service suspension charged by switches, seconds.
    pub stall_total_s: f64,
    /// Sum of per-request queue waits (arrival → batch close), seconds.
    pub queue_wait_sum_s: f64,
    /// Sum of per-request batch waits (close → service start), seconds.
    pub batch_wait_sum_s: f64,
    /// Sum of per-request service times, seconds.
    pub service_sum_s: f64,
    /// Sum of per-request end-to-end latencies, seconds.
    pub latency_sum_s: f64,
    /// Sum of per-request serving-model accuracies, percent.
    pub accuracy_sum_pct: f64,
    /// Accumulated *batch-level* service time — the device's busy time,
    /// for utilisation (unlike `service_sum_s`, counted once per batch).
    pub busy_service_s: f64,
}

/// What one [`DeviceCore::close_batch`] call did — the fleet layer turns
/// this into per-device reconfiguration telemetry and stagger accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchClose {
    /// Requests in the closed batch.
    pub size: usize,
    /// Model serving the batch.
    pub model: String,
    /// Stall charged by the policy at this close (zero when the policy was
    /// not consulted or did not switch).
    pub stall_s: f64,
    /// When the stall window begins (equals the close instant under the
    /// identity gate; later when a coordinator deferred the drain).
    pub drain_start_s: f64,
    /// When service starts (`drain_start_s + stall_s`).
    pub start_s: f64,
    /// When the batch completes.
    pub done_s: f64,
    /// Whether this close switched the CNN model.
    pub model_switched: bool,
    /// Whether this close reconfigured the FPGA fabric.
    pub reconfigured: bool,
}

/// One policy-controlled single-server device: queue, batcher, pressure
/// observation and deadline accounting.
pub struct DeviceCore {
    config: ServeConfig,
    queue: AdmissionQueue,
    busy: Option<InFlight>,
    state: Option<ServingState>,
    last_control: f64,
    /// Observed arrival-rate EWMA, seeded with the operator's nominal
    /// estimate until arrivals teach it.
    ewma: f64,
    last_arrival_s: Option<f64>,
    stats: DeviceStats,
    latency: LogHistogram,
}

impl DeviceCore {
    /// Creates a device core. `initial_rate_fps` seeds the arrival-rate
    /// EWMA (the operator's nominal estimate of this device's share of the
    /// offered load); the caller resolves `config.initial_rate_fps == 0`
    /// against the workload before constructing the core.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (`max_batch == 0`,
    /// non-positive `ewma_tau_s` or `drain_target_s`).
    #[must_use]
    pub fn new(config: ServeConfig, initial_rate_fps: f64) -> Self {
        assert!(config.max_batch > 0, "max_batch must be positive");
        assert!(config.ewma_tau_s > 0.0, "ewma_tau_s must be positive");
        assert!(
            config.drain_target_s > 0.0,
            "drain_target_s must be positive"
        );
        let queue = AdmissionQueue::new(config.queue_capacity, config.overflow);
        Self {
            config,
            queue,
            busy: None,
            state: None,
            last_control: f64::NEG_INFINITY,
            ewma: initial_rate_fps,
            last_arrival_s: None,
            stats: DeviceStats::default(),
            latency: LogHistogram::latency_s(),
        }
    }

    /// The device's serving configuration.
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Current admission-queue occupancy.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Requests in the in-flight batch (zero while idle).
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.busy.as_ref().map_or(0, |b| b.members.len())
    }

    /// Completion instant of the in-flight batch, if any — the earliest
    /// time the server can accept new work.
    #[must_use]
    pub fn busy_until_s(&self) -> Option<f64> {
        self.busy.as_ref().map(|b| b.done_s)
    }

    /// Throughput of the currently-applied serving state, if established.
    #[must_use]
    pub fn serving_fps(&self) -> Option<f64> {
        self.state.as_ref().map(|s| s.throughput_fps)
    }

    /// The device's observed arrival-rate EWMA, FPS.
    #[must_use]
    pub fn ewma_fps(&self) -> f64 {
        self.ewma
    }

    /// Running counters.
    #[must_use]
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// Whether the device holds no work (queue empty, server idle).
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.queue.is_empty() && self.busy.is_none()
    }

    /// Consumes the core, returning final counters and the completed-
    /// request latency distribution.
    #[must_use]
    pub fn finish(self) -> (DeviceStats, LogHistogram) {
        (self.stats, self.latency)
    }

    /// Next batch-completion instant, if a batch is in flight.
    #[must_use]
    pub fn next_completion_s(&self) -> Option<f64> {
        self.busy.as_ref().map(|b| b.done_s)
    }

    /// Next batch-close instant: only while the server is idle with queued
    /// work — `now` when the queue already holds a full batch, otherwise
    /// when the oldest queued request exhausts its batching wait.
    #[must_use]
    pub fn next_close_s(&self, now: f64) -> Option<f64> {
        if self.busy.is_some() {
            return None;
        }
        self.queue.oldest_arrival_s().map(|oldest| {
            if self.queue.len() >= self.config.max_batch {
                now
            } else {
                (oldest + self.config.max_wait_s).max(now)
            }
        })
    }

    /// Offers one request at `now`, teaching the arrival EWMA and
    /// resolving admission per the overflow policy. Telemetry
    /// (`RequestEnqueued` / `RequestShed`) goes to `sink`.
    pub fn offer(&mut self, request: Request, now: f64, sink: &SinkHandle) -> Admission {
        self.stats.arrived += 1;
        // Teach the EWMA the instantaneous rate implied by the observed
        // inter-arrival gap.
        if let Some(prev) = self.last_arrival_s {
            let dt = now - prev;
            if dt > 0.0 {
                let alpha = 1.0 - (-dt / self.config.ewma_tau_s).exp();
                self.ewma += alpha * (1.0 / dt - self.ewma);
            }
        }
        self.last_arrival_s = Some(now);

        let depth_before = self.queue.len() as u64;
        let admission = self.queue.offer(request);
        match &admission {
            Admission::Enqueued { depth } => {
                if sink.enabled() {
                    sink.emit(
                        now,
                        EventKind::RequestEnqueued {
                            id: request.id,
                            device: request.device,
                            queue_depth: *depth,
                        },
                    );
                }
            }
            Admission::Rejected => {
                self.stats.shed += 1;
                if sink.enabled() {
                    sink.emit(
                        now,
                        EventKind::RequestShed {
                            id: request.id,
                            reason: self.config.overflow.shed_reason().to_string(),
                            queue_depth: depth_before,
                        },
                    );
                }
            }
            Admission::Displaced { victim, depth } => {
                self.stats.shed += 1;
                if sink.enabled() {
                    sink.emit(
                        now,
                        EventKind::RequestShed {
                            id: victim.id,
                            reason: self.config.overflow.shed_reason().to_string(),
                            queue_depth: depth_before,
                        },
                    );
                    sink.emit(
                        now,
                        EventKind::RequestEnqueued {
                            id: request.id,
                            device: request.device,
                            queue_depth: *depth,
                        },
                    );
                }
            }
        }
        admission
    }

    /// Completes the in-flight batch at `now`, accounting every member's
    /// deadline outcome and pushing its latency decomposition onto
    /// `details` (completion order).
    ///
    /// # Panics
    ///
    /// Panics if no batch is in flight — callers drive completions off
    /// [`DeviceCore::next_completion_s`].
    pub fn complete(&mut self, now: f64, sink: &SinkHandle, details: &mut Vec<CompletedRequest>) {
        let batch = self
            .busy
            .take()
            .expect("completion implies an in-flight batch");
        for member in &batch.members {
            let latency_s = now - member.arrival_s;
            let deadline_met = latency_s <= self.config.deadline_s + TIME_EPS;
            self.stats.completed += 1;
            self.stats.deadline_hits += u64::from(deadline_met);
            self.stats.latency_sum_s += latency_s;
            self.stats.queue_wait_sum_s += batch.close_s - member.arrival_s;
            self.stats.batch_wait_sum_s += batch.start_s - batch.close_s;
            self.stats.service_sum_s += batch.service_s;
            self.stats.accuracy_sum_pct += batch.accuracy;
            self.latency.record(latency_s);
            details.push(CompletedRequest {
                id: member.id,
                device: member.device,
                arrival_s: member.arrival_s,
                queue_wait_s: batch.close_s - member.arrival_s,
                batch_wait_s: batch.start_s - batch.close_s,
                stall_s: batch.start_s - batch.drain_start_s,
                service_s: batch.service_s,
                latency_s,
                deadline_met,
            });
            if sink.enabled() {
                sink.emit(
                    now,
                    EventKind::RequestCompleted {
                        id: member.id,
                        latency_s,
                        deadline_met,
                    },
                );
            }
        }
    }

    /// Closes a batch at `now`: consults the policy (rate-limited to one
    /// consultation per control period; the very first close must
    /// establish a state), takes up to `max_batch` requests and puts them
    /// in flight.
    ///
    /// `drain_gate` maps `(now, stall_s)` to the instant the stall window
    /// may begin (`>= now`); service then starts at `drain_start +
    /// stall_s`. The single-device engine passes the identity gate; a
    /// fleet coordinator returns a later slot to stagger concurrent
    /// drains. The gate is consulted only when a switch actually stalls.
    ///
    /// # Panics
    ///
    /// Panics if the queue is empty or a batch is already in flight —
    /// callers drive closes off [`DeviceCore::next_close_s`].
    pub fn close_batch(
        &mut self,
        now: f64,
        policy: &mut dyn ServePolicy,
        sink: &SinkHandle,
        drain_gate: &mut dyn FnMut(f64, f64) -> f64,
    ) -> BatchClose {
        assert!(self.busy.is_none(), "close with a batch in flight");
        // Consult the policy at most once per control period; the very
        // first close must establish a state.
        let mut stall_s = 0.0;
        let mut model_switched = false;
        let mut reconfigured = false;
        if self.state.is_none()
            || now - self.last_control >= self.config.control_period_s - TIME_EPS
        {
            let signal = PressureSignal {
                arrival_fps_ewma: self.ewma,
                queue_depth: self.queue.len() as f64,
                drain_target_s: self.config.drain_target_s,
            };
            let new_state = policy.on_pressure(now, &signal);
            if new_state.model_switched {
                self.stats.model_switches += 1;
                if new_state.reconfigured {
                    self.stats.reconfigurations += 1;
                } else {
                    self.stats.flexible_switches += 1;
                }
            }
            stall_s = new_state.stall_s;
            model_switched = new_state.model_switched;
            reconfigured = new_state.reconfigured;
            self.stats.stall_total_s += stall_s;
            self.state = Some(new_state);
            self.last_control = now;
        }
        let st = self
            .state
            .as_ref()
            .expect("state established at first close");
        let members = self.queue.take_batch(self.config.max_batch);
        assert!(!members.is_empty(), "close event with an empty queue");
        let oldest_wait_s = now - members[0].arrival_s;
        if sink.enabled() {
            sink.emit(
                now,
                EventKind::BatchClosed {
                    size: members.len() as u64,
                    oldest_wait_s,
                    model: st.model.clone(),
                },
            );
        }
        self.stats.batches += 1;
        self.stats.batched_requests += members.len() as u64;
        let drain_start_s = if stall_s > 0.0 {
            drain_gate(now, stall_s).max(now)
        } else {
            now
        };
        let start_s = drain_start_s + stall_s;
        let service_s = members.len() as f64 / st.throughput_fps.max(1e-9);
        self.stats.busy_service_s += service_s;
        let close = BatchClose {
            size: members.len(),
            model: st.model.clone(),
            stall_s,
            drain_start_s,
            start_s,
            done_s: start_s + service_s,
            model_switched,
            reconfigured,
        };
        self.busy = Some(InFlight {
            close_s: now,
            drain_start_s,
            start_s,
            service_s,
            done_s: close.done_s,
            accuracy: st.accuracy,
            members,
        });
        close
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::OverflowPolicy;
    use adaflow_dataflow::AcceleratorKind;
    use adaflow_hls::{PowerModel, ResourceEstimate};

    struct Fixed(f64);

    impl ServePolicy for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }

        fn on_pressure(&mut self, _now: f64, _signal: &PressureSignal) -> ServingState {
            ServingState {
                throughput_fps: self.0,
                stall_s: 0.0,
                accuracy: 80.0,
                power: PowerModel::new(ResourceEstimate {
                    lut: 1,
                    ff: 1,
                    bram36: 1,
                    dsp: 0,
                }),
                activity: 1.0,
                model: "fixed".into(),
                accelerator: AcceleratorKind::Finn,
                model_switched: false,
                reconfigured: false,
            }
        }
    }

    fn req(id: u64, arrival_s: f64) -> Request {
        Request {
            id,
            device: 0,
            arrival_s,
        }
    }

    #[test]
    fn close_candidate_respects_batch_and_wait() {
        let mut core = DeviceCore::new(
            ServeConfig {
                max_batch: 2,
                max_wait_s: 0.5,
                ..ServeConfig::default()
            },
            100.0,
        );
        let sink = SinkHandle::default();
        assert_eq!(core.next_close_s(0.0), None, "empty queue never closes");
        core.offer(req(0, 0.0), 0.0, &sink);
        assert_eq!(core.next_close_s(0.1), Some(0.5), "timer from oldest");
        core.offer(req(1, 0.1), 0.1, &sink);
        assert_eq!(core.next_close_s(0.1), Some(0.1), "full batch closes now");
    }

    /// A policy that stalls on its very first consult.
    struct Stall;
    impl ServePolicy for Stall {
        fn name(&self) -> &str {
            "stall"
        }
        fn on_pressure(&mut self, now: f64, signal: &PressureSignal) -> ServingState {
            let mut s = Fixed(100.0).on_pressure(now, signal);
            s.stall_s = 0.1;
            s.model_switched = true;
            s.reconfigured = true;
            s
        }
    }

    #[test]
    fn drain_gate_shifts_service_start() {
        let mut core = DeviceCore::new(ServeConfig::default(), 100.0);
        let sink = SinkHandle::default();
        core.offer(req(0, 0.0), 0.0, &sink);
        let close = core.close_batch(0.02, &mut Stall, &sink, &mut |_, _| 0.25);
        assert_eq!(close.drain_start_s, 0.25, "gate defers the drain");
        assert!((close.start_s - 0.35).abs() < 1e-12, "service after stall");
        assert!(close.reconfigured);
        assert_eq!(core.next_completion_s(), Some(close.done_s));
    }

    #[test]
    fn stats_track_batch_level_busy_time() {
        let mut core = DeviceCore::new(ServeConfig::default(), 100.0);
        let sink = SinkHandle::default();
        let mut details = Vec::new();
        for id in 0..4 {
            core.offer(req(id, 0.0), 0.0, &sink);
        }
        let close = core.close_batch(0.0, &mut Fixed(100.0), &sink, &mut |now, _| now);
        core.complete(close.done_s, &sink, &mut details);
        let stats = core.stats();
        assert_eq!(stats.completed, 4);
        // Per-member service sums 4×, batch-level busy time once.
        assert!((stats.service_sum_s - 4.0 * close.done_s).abs() < 1e-9);
        assert!((stats.busy_service_s - (close.done_s - close.start_s)).abs() < 1e-12);
        assert!(core.is_drained());
        assert_eq!(details.len(), 4);
    }

    #[test]
    fn zero_capacity_core_sheds_everything() {
        let mut core = DeviceCore::new(
            ServeConfig {
                queue_capacity: 0,
                overflow: OverflowPolicy::ShedOldest,
                ..ServeConfig::default()
            },
            100.0,
        );
        let sink = SinkHandle::default();
        for id in 0..5 {
            assert_eq!(
                core.offer(req(id, id as f64 * 0.01), id as f64 * 0.01, &sink),
                Admission::Rejected
            );
        }
        assert_eq!(core.stats().arrived, 5);
        assert_eq!(core.stats().shed, 5);
        assert_eq!(core.next_close_s(1.0), None, "nothing ever queues");
        assert!(core.is_drained());
    }
}
