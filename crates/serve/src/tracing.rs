//! Causal span-tree emission for completed requests.
//!
//! Every completed request already carries its full latency decomposition
//! in [`CompletedRequest`]; this module lowers that decomposition into the
//! telemetry span taxonomy (`request` root tiled by `queue_wait` →
//! `batch_form` → `reconfig_stall` → `compute`, plus a zero-width `route`
//! marker in fleet mode). Stage boundaries are built by telescoping the
//! per-stage durations from the arrival instant, so consecutive children
//! share their boundary instants *exactly* and their durations sum to the
//! root duration up to ulp-level rounding of the boundary subtractions —
//! the waterfall analyzer's tiling invariant.
//!
//! Trees are emitted at completion time (never at arrival), so shed
//! requests leave no orphan spans, and everything rides the simulation
//! clock: traces are bit-identical per seed.

use crate::request::CompletedRequest;
use adaflow_telemetry::{SinkHandle, Stage, TraceBuilder, TraceId};

/// Emits the span tree of one completed request.
///
/// `device_idx` is the fleet device that served the request (0 in
/// single-device mode); `routed` adds the zero-width `route` child at the
/// arrival instant (the fleet router decides synchronously on arrival).
/// No-op when the sink is disabled.
pub fn emit_request_trace(
    sink: &SinkHandle,
    done: &CompletedRequest,
    device_idx: u32,
    routed: bool,
) {
    if !sink.enabled() {
        return;
    }
    let t_arrival = done.arrival_s;
    let t_close = t_arrival + done.queue_wait_s;
    // The deferral part of batch_wait; clamp the fp residue of the
    // subtraction so stage durations never go negative.
    let t_drain = t_close + (done.batch_wait_s - done.stall_s).max(0.0);
    let t_start = t_drain + done.stall_s;
    let t_done = t_start + done.service_s;
    let mut tree = TraceBuilder::new(TraceId(done.id), device_idx)
        .root(t_arrival, t_done)
        .child(Stage::QueueWait, t_arrival, t_close)
        .child(Stage::BatchForm, t_close, t_drain)
        .child(Stage::ReconfigStall, t_drain, t_start)
        .child(Stage::Compute, t_start, t_done);
    if routed {
        tree = tree.child(Stage::Route, t_arrival, t_arrival);
    }
    tree.emit(sink);
}

/// Emits span trees for a batch of completions (a `details` suffix fresh
/// out of `DeviceCore::complete`).
pub fn emit_request_traces(
    sink: &SinkHandle,
    done: &[CompletedRequest],
    device_idx: u32,
    routed: bool,
) {
    for d in done {
        emit_request_trace(sink, d, device_idx, routed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaflow_telemetry::{SpanRecord, TraceForest};

    fn completed(stall_s: f64) -> CompletedRequest {
        CompletedRequest {
            id: 11,
            device: 2,
            arrival_s: 1.0,
            queue_wait_s: 0.02,
            batch_wait_s: 0.05 + stall_s,
            stall_s,
            service_s: 0.04,
            latency_s: 0.11 + stall_s,
            deadline_met: false,
        }
    }

    #[test]
    fn emitted_tree_is_well_formed_and_tiles_exactly() {
        let (sink, recorder) = SinkHandle::recorder(64);
        emit_request_trace(&sink, &completed(0.145), 3, true);
        let forest = TraceForest::from_events(&recorder.drain());
        assert_eq!(forest.len(), 1);
        forest.validate().expect("well-formed");
        let trace = &forest.traces[0];
        assert_eq!(trace.id, TraceId(11));
        assert_eq!(trace.spans.len(), 6, "root + route + 4 leaf stages");
        let root = trace.root().expect("root");
        assert_eq!(root.device_idx, 3);
        let leaf_sum: f64 = Stage::LEAVES
            .iter()
            .map(|s| {
                trace
                    .spans
                    .iter()
                    .find(|r| r.span == s.span_id())
                    .map_or(0.0, SpanRecord::duration_s)
            })
            .sum();
        assert!(
            (leaf_sum - root.duration_s()).abs() < 1e-12,
            "telescoped boundaries tile the root"
        );
        let route = trace
            .spans
            .iter()
            .find(|r| r.span == Stage::Route.span_id())
            .expect("route span");
        assert_eq!(route.duration_s(), 0.0);
        assert_eq!(route.begin_s, 1.0);
    }

    #[test]
    fn unrouted_trace_omits_the_route_span() {
        let (sink, recorder) = SinkHandle::recorder(64);
        emit_request_trace(&sink, &completed(0.0), 0, false);
        let forest = TraceForest::from_events(&recorder.drain());
        forest.validate().expect("well-formed");
        assert_eq!(forest.traces[0].spans.len(), 5);
        assert!(forest.traces[0]
            .spans
            .iter()
            .all(|s| s.span != Stage::Route.span_id()));
    }

    #[test]
    fn disabled_sink_emits_nothing() {
        let sink = SinkHandle::null();
        emit_request_trace(&sink, &completed(0.0), 0, false);
    }
}
