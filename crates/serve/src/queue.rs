//! Bounded FIFO admission queue with a pluggable overflow policy.
//!
//! The queue is strictly FIFO: requests leave the front either as part of a
//! closed batch or as a `shed-oldest` victim; nothing reorders. Admission
//! at capacity is resolved by the [`OverflowPolicy`]:
//!
//! * [`OverflowPolicy::Block`] — reject the incoming request (classic tail
//!   drop);
//! * [`OverflowPolicy::ShedOldest`] — evict the head (the request most
//!   likely past its deadline anyway) and admit the newcomer;
//! * [`OverflowPolicy::ShedNewest`] — evict the youngest queued request and
//!   admit the newcomer (keeps the oldest work converging).

use crate::request::Request;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Anything the queue can admit: all it needs from an item is its arrival
/// instant (seconds on whichever clock the caller runs — simulated time in
/// the DES, wall-clock-since-epoch in the live server).
pub trait Arriving {
    /// Arrival instant in seconds.
    fn arrival_s(&self) -> f64;
}

impl Arriving for Request {
    fn arrival_s(&self) -> f64 {
        self.arrival_s
    }
}

/// What to do with an arrival when the queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverflowPolicy {
    /// Reject the incoming request.
    Block,
    /// Evict the oldest queued request, admit the incoming one.
    ShedOldest,
    /// Evict the newest queued request, admit the incoming one.
    ShedNewest,
}

impl OverflowPolicy {
    /// Parses the CLI spelling (`block`, `oldest`, `newest`).
    #[must_use]
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "block" => Some(OverflowPolicy::Block),
            "oldest" => Some(OverflowPolicy::ShedOldest),
            "newest" => Some(OverflowPolicy::ShedNewest),
            _ => None,
        }
    }

    /// The telemetry `reason` string attached to requests shed under this
    /// policy.
    #[must_use]
    pub fn shed_reason(self) -> &'static str {
        match self {
            OverflowPolicy::Block => "queue-full",
            OverflowPolicy::ShedOldest => "shed-oldest",
            OverflowPolicy::ShedNewest => "shed-newest",
        }
    }
}

/// Outcome of offering one request to the queue.
#[derive(Debug, Clone, PartialEq)]
pub enum Admission<T = Request> {
    /// Admitted; `depth` is the occupancy after the push.
    Enqueued {
        /// Queue occupancy after admission.
        depth: u64,
    },
    /// The incoming request was rejected (queue full, [`OverflowPolicy::Block`]).
    Rejected,
    /// A queued victim was evicted to make room; the incoming request was
    /// admitted.
    Displaced {
        /// The evicted request.
        victim: T,
        /// Queue occupancy after eviction and admission.
        depth: u64,
    },
}

/// The bounded admission queue.
///
/// Generic over the queued item so the DES (which queues the lightweight
/// [`Request`]) and the live TCP server (which queues decoded wire requests
/// with their response plumbing attached) share one admission policy
/// implementation — the overflow semantics are identical by construction.
#[derive(Debug, Clone)]
pub struct AdmissionQueue<T: Arriving = Request> {
    capacity: usize,
    policy: OverflowPolicy,
    items: VecDeque<T>,
}

impl<T: Arriving> AdmissionQueue<T> {
    /// Creates an empty queue.
    ///
    /// A `capacity` of zero is legal and degenerate: every offer is
    /// rejected (there is no room to admit and no queued victim to
    /// displace), so such a queue sheds the entire arrival stream. The
    /// serving engine stays conservation-clean over it — `arrived == shed`
    /// with nothing ever served.
    #[must_use]
    pub fn new(capacity: usize, policy: OverflowPolicy) -> Self {
        Self {
            capacity,
            policy,
            items: VecDeque::with_capacity(capacity.min(4096)),
        }
    }

    /// Offers one request, resolving overflow per the policy.
    pub fn offer(&mut self, request: T) -> Admission<T> {
        if self.items.len() < self.capacity {
            self.items.push_back(request);
            return Admission::Enqueued {
                depth: self.items.len() as u64,
            };
        }
        if self.items.is_empty() {
            // Capacity zero: nothing to displace, the newcomer is the only
            // possible victim under every policy.
            return Admission::Rejected;
        }
        match self.policy {
            OverflowPolicy::Block => Admission::Rejected,
            OverflowPolicy::ShedOldest => {
                let victim = self.items.pop_front().expect("full queue has a head");
                self.items.push_back(request);
                Admission::Displaced {
                    victim,
                    depth: self.items.len() as u64,
                }
            }
            OverflowPolicy::ShedNewest => {
                let victim = self.items.pop_back().expect("full queue has a tail");
                self.items.push_back(request);
                Admission::Displaced {
                    victim,
                    depth: self.items.len() as u64,
                }
            }
        }
    }

    /// Removes and returns up to `max` requests from the front, in FIFO
    /// order.
    pub fn take_batch(&mut self, max: usize) -> Vec<T> {
        let n = self.items.len().min(max);
        self.items.drain(..n).collect()
    }

    /// Arrival instant of the oldest queued request, if any.
    #[must_use]
    pub fn oldest_arrival_s(&self) -> Option<f64> {
        self.items.front().map(Arriving::arrival_s)
    }

    /// Current occupancy.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The configured overflow policy.
    #[must_use]
    pub fn policy(&self) -> OverflowPolicy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64) -> Request {
        Request {
            id,
            device: 0,
            arrival_s: id as f64 * 0.01,
        }
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut q = AdmissionQueue::new(8, OverflowPolicy::Block);
        for id in 0..5 {
            q.offer(req(id));
        }
        let batch = q.take_batch(3);
        assert_eq!(batch.iter().map(|r| r.id).collect::<Vec<_>>(), [0, 1, 2]);
        let rest = q.take_batch(10);
        assert_eq!(rest.iter().map(|r| r.id).collect::<Vec<_>>(), [3, 4]);
        assert!(q.is_empty());
    }

    #[test]
    fn block_rejects_incoming_at_capacity() {
        let mut q = AdmissionQueue::new(2, OverflowPolicy::Block);
        q.offer(req(0));
        q.offer(req(1));
        assert_eq!(q.offer(req(2)), Admission::Rejected);
        assert_eq!(q.len(), 2);
        assert_eq!(q.take_batch(2)[0].id, 0);
    }

    #[test]
    fn shed_oldest_evicts_head() {
        let mut q = AdmissionQueue::new(2, OverflowPolicy::ShedOldest);
        q.offer(req(0));
        q.offer(req(1));
        match q.offer(req(2)) {
            Admission::Displaced { victim, depth } => {
                assert_eq!(victim.id, 0);
                assert_eq!(depth, 2);
            }
            other => panic!("expected displacement, got {other:?}"),
        }
        assert_eq!(
            q.take_batch(2).iter().map(|r| r.id).collect::<Vec<_>>(),
            [1, 2]
        );
    }

    #[test]
    fn shed_newest_evicts_tail() {
        let mut q = AdmissionQueue::new(2, OverflowPolicy::ShedNewest);
        q.offer(req(0));
        q.offer(req(1));
        match q.offer(req(2)) {
            Admission::Displaced { victim, .. } => assert_eq!(victim.id, 1),
            other => panic!("expected displacement, got {other:?}"),
        }
        assert_eq!(
            q.take_batch(2).iter().map(|r| r.id).collect::<Vec<_>>(),
            [0, 2]
        );
    }

    #[test]
    fn shed_reasons_are_stable() {
        assert_eq!(OverflowPolicy::Block.shed_reason(), "queue-full");
        assert_eq!(OverflowPolicy::ShedOldest.shed_reason(), "shed-oldest");
        assert_eq!(OverflowPolicy::ShedNewest.shed_reason(), "shed-newest");
    }

    #[test]
    fn parse_cli_spellings() {
        assert_eq!(OverflowPolicy::parse("block"), Some(OverflowPolicy::Block));
        assert_eq!(
            OverflowPolicy::parse("oldest"),
            Some(OverflowPolicy::ShedOldest)
        );
        assert_eq!(
            OverflowPolicy::parse("newest"),
            Some(OverflowPolicy::ShedNewest)
        );
        assert_eq!(OverflowPolicy::parse("lifo"), None);
    }

    #[test]
    fn zero_capacity_rejects_under_every_policy() {
        for policy in [
            OverflowPolicy::Block,
            OverflowPolicy::ShedOldest,
            OverflowPolicy::ShedNewest,
        ] {
            let mut q = AdmissionQueue::new(0, policy);
            assert_eq!(q.offer(req(0)), Admission::Rejected, "{policy:?}");
            assert!(q.is_empty());
            assert!(q.take_batch(4).is_empty());
        }
    }
}
