//! Pressure-driven serving policies.
//!
//! The fluid simulator hands its policies the workload's *nominal* rate —
//! an oracle a real server does not have. The serving layer instead derives
//! a [`PressureSignal`] from what it can observe (arrival EWMA plus queue
//! backlog) and consults one of three policies:
//!
//! * [`AdaFlowServePolicy`] — the full Runtime Manager, driven through
//!   [`RuntimeManager::decide_from_pressure`]: fixed *and* flexible
//!   accelerators, hysteresis, reconfiguration stalls;
//! * [`FixedMaxPolicy`] — the static FINN baseline: the unpruned
//!   max-accuracy model on its fixed accelerator, loaded once, never
//!   switched;
//! * [`FlexibleOnlyPolicy`] — pinned to the flexible fabric: model
//!   switches are weight reloads over the PS-PL bus, never a
//!   reconfiguration.
//!
//! All three return the shared [`ServingState`] so the engine, metrics and
//! telemetry treat them uniformly.

use adaflow::{Library, PressureSignal, RuntimeConfig, RuntimeManager, SwitchKind};
use adaflow_dataflow::AcceleratorKind;
use adaflow_edge::ServingState;

/// A serving policy consulted with observed pressure instead of oracle
/// workload knowledge.
pub trait ServePolicy {
    /// Policy display name (stable; used in summaries and the CLI).
    fn name(&self) -> &str;

    /// Reacts to the pressure observed at `now_s`, returning the serving
    /// state to run the next batches under.
    fn on_pressure(&mut self, now_s: f64, signal: &PressureSignal) -> ServingState;
}

/// The full AdaFlow Runtime Manager under pressure drive, with an optional
/// deadline-aware reconfiguration guard.
///
/// The fluid simulator applies every manager decision the instant it is
/// made; at request granularity that is wrong, because a reconfiguration
/// stall taken while the queue is deep pushes every queued request past its
/// deadline. With a deadline configured (see [`Self::with_deadline`]), the
/// policy separates the manager's *target* from the *live* fabric state:
///
/// * capacity **upgrades** (higher throughput than the live state) are
///   applied immediately — they are what drains the backlog;
/// * any other switch is **deferred** unless it is deadline-safe: the
///   target must keep throughput headroom over demanded service rate (a
///   tier sized exactly to the current rate becomes a backlog trap on the
///   next rate jump), and the stall plus the backlog drain at the new rate
///   must fit inside the deadline;
/// * if the manager's target reverts to the live state before a safe
///   window opens (a transient lull), the stall is never paid at all.
///
/// Transition costs are always charged against the fabric state that is
/// physically live, not against the manager's bookkeeping, so a deferred
/// decision cannot turn a fabric change into a free weight reload.
#[derive(Debug, Clone)]
pub struct AdaFlowServePolicy<'l> {
    library: &'l Library,
    manager: RuntimeManager<'l>,
    config: RuntimeConfig,
    deadline_s: Option<f64>,
    /// The serving state physically live on the fabric (flags and stall
    /// zeroed); `None` until the first consult.
    applied: Option<ServingState>,
    /// Decayed peak of demanded service rate — what a capacity decision
    /// must stay safe against, since reversing it costs another stall.
    peak_demand_fps: f64,
    last_consult_s: f64,
}

impl<'l> AdaFlowServePolicy<'l> {
    /// Creates the policy from a library and runtime configuration. Without
    /// [`Self::with_deadline`], every manager decision is applied
    /// immediately, exactly like the fluid simulator.
    #[must_use]
    pub fn new(library: &'l Library, config: RuntimeConfig) -> Self {
        Self {
            library,
            manager: RuntimeManager::new(library, config.clone()),
            config,
            deadline_s: None,
            applied: None,
            peak_demand_fps: 0.0,
            last_consult_s: 0.0,
        }
    }

    /// Enables the deadline-aware reconfiguration guard for requests with
    /// the given end-to-end deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline_s: f64) -> Self {
        self.deadline_s = (deadline_s > 0.0).then_some(deadline_s);
        self
    }

    /// The decision's serving state with the *physical* transition cost
    /// from `applied` (not the manager's internal books, which may have
    /// drifted ahead while decisions were deferred).
    fn target_state(&self, entry_index: usize, accelerator: AcceleratorKind) -> ServingState {
        let entry = &self.library.entries()[entry_index];
        let (power, activity, throughput_fps) = match accelerator {
            AcceleratorKind::FlexiblePruning => (
                self.library.flexible.power,
                entry.flexible_activity,
                entry.flexible_fps,
            ),
            _ => (entry.fixed.power, 1.0, entry.fixed.throughput_fps),
        };
        let mut state = ServingState {
            throughput_fps,
            stall_s: 0.0,
            accuracy: entry.accuracy,
            power,
            activity,
            model: entry.name.clone(),
            accelerator,
            model_switched: false,
            reconfigured: false,
        };
        let Some(live) = &self.applied else {
            // First load: the image is assumed resident when the serving
            // window opens, like every policy in the stack.
            return state;
        };
        if live.model == state.model && live.accelerator == state.accelerator {
            return state;
        }
        state.model_switched = true;
        if live.accelerator == AcceleratorKind::FlexiblePruning
            && accelerator == AcceleratorKind::FlexiblePruning
        {
            // Same flexible fabric: stream the new weights over the bus.
            state.stall_s =
                entry.weight_bits as f64 / 8.0 / self.config.weight_bus_bytes_per_second;
        } else {
            // Any fabric change loads the target bitstream.
            let bitstream = match accelerator {
                AcceleratorKind::FlexiblePruning => &self.library.flexible.bitstream,
                _ => &entry.fixed.bitstream,
            };
            state.stall_s = self
                .config
                .reconfig
                .reconfiguration_time(bitstream)
                .as_secs_f64();
            state.reconfigured = true;
        }
        state
    }
}

/// Throughput headroom a non-upgrade switch must keep over the demand peak
/// before the guard lets capacity go: a tier sized to the current rate is
/// a backlog trap the moment the rate jumps again.
const SWITCH_HEADROOM: f64 = 1.15;

/// Decay horizon of the peak-demand tracker, seconds — roughly how long a
/// capacity decision stays binding (reversing it costs another stall).
const PEAK_WINDOW_S: f64 = 10.0;

/// Throughput gain factor above which a switch counts as a capacity
/// upgrade and bypasses the deadline guard.
const UPGRADE_MARGIN: f64 = 1.05;

/// Whether taking `state` now is deadline-safe: the target must keep
/// [`SWITCH_HEADROOM`] over the recent demand *peak* (the EWMA alone is
/// blind to the rate jumping back within the decision's lifetime), and the
/// worst-case wait — the head of the queue rides out the whole stall and
/// then drains at the *new* rate — must fit inside the deadline.
fn deadline_safe(
    state: &ServingState,
    signal: &PressureSignal,
    peak_demand_fps: f64,
    deadline_s: f64,
) -> bool {
    let new_fps = state.throughput_fps.max(1.0);
    if new_fps < SWITCH_HEADROOM * signal.demand_fps().max(peak_demand_fps) {
        return false;
    }
    state.stall_s + signal.queue_depth / new_fps <= deadline_s
}

impl ServePolicy for AdaFlowServePolicy<'_> {
    fn name(&self) -> &str {
        "adaflow"
    }

    fn on_pressure(&mut self, now_s: f64, signal: &PressureSignal) -> ServingState {
        let dt = (now_s - self.last_consult_s).max(0.0);
        self.last_consult_s = now_s;
        self.peak_demand_fps =
            (self.peak_demand_fps * (-dt / PEAK_WINDOW_S).exp()).max(signal.demand_fps());
        let decision = self.manager.decide_from_pressure(now_s, signal);
        debug_assert!(
            decision.switch == SwitchKind::None || decision.stall_s >= 0.0,
            "manager stalls are non-negative"
        );
        let state = self.target_state(decision.entry_index, decision.accelerator);
        let steady = |s: &ServingState| ServingState {
            stall_s: 0.0,
            model_switched: false,
            reconfigured: false,
            ..s.clone()
        };
        if let (Some(deadline), Some(live)) = (self.deadline_s, &self.applied) {
            // A fabric-only move for the model already being served is
            // strictly dominated: identical accuracy, near-identical
            // throughput, and a full reconfiguration stall.
            if state.reconfigured && state.model == live.model {
                return steady(live);
            }
            // Only a material capacity gain justifies stalling without the
            // safety check; marginal "upgrades" (e.g. the ~0.5 % fixed-vs-
            // flexible gap) go through the guard like any other switch.
            let upgrade = state.throughput_fps > live.throughput_fps * UPGRADE_MARGIN;
            if !upgrade && !deadline_safe(&state, signal, self.peak_demand_fps, deadline) {
                return steady(live);
            }
        }
        self.applied = Some(steady(&state));
        state
    }
}

/// The static baseline: the unpruned maximum-accuracy model on the original
/// FINN accelerator, resident for the whole run.
#[derive(Debug, Clone)]
pub struct FixedMaxPolicy<'l> {
    library: &'l Library,
}

impl<'l> FixedMaxPolicy<'l> {
    /// Creates the baseline over a library (uses only its baseline
    /// accelerator and unpruned accuracy).
    #[must_use]
    pub fn new(library: &'l Library) -> Self {
        Self { library }
    }
}

impl ServePolicy for FixedMaxPolicy<'_> {
    fn name(&self) -> &str {
        "fixed-max"
    }

    fn on_pressure(&mut self, _now_s: f64, _signal: &PressureSignal) -> ServingState {
        let baseline = &self.library.baseline;
        ServingState {
            throughput_fps: baseline.throughput_fps,
            stall_s: 0.0,
            accuracy: self.library.base_accuracy(),
            power: baseline.power,
            activity: 1.0,
            model: self.library.initial_model.clone(),
            accelerator: AcceleratorKind::Finn,
            model_switched: false,
            reconfigured: false,
        }
    }
}

/// Model switching pinned to the flexible fabric: every switch streams new
/// weights over the PS-PL bus (fast, but the fabric's worst-case sizing
/// costs throughput on every model).
#[derive(Debug, Clone)]
pub struct FlexibleOnlyPolicy<'l> {
    library: &'l Library,
    manager: RuntimeManager<'l>,
    bus_bytes_per_second: f64,
    current: Option<usize>,
}

impl<'l> FlexibleOnlyPolicy<'l> {
    /// Creates the policy; model selection reuses the Runtime Manager's
    /// accuracy-threshold logic restricted to the flexible fabric.
    #[must_use]
    pub fn new(library: &'l Library, config: RuntimeConfig) -> Self {
        let bus = config.weight_bus_bytes_per_second;
        Self {
            library,
            manager: RuntimeManager::new(library, config),
            bus_bytes_per_second: bus,
            current: None,
        }
    }

    /// Worst-case weight-reload stall over this library, seconds.
    #[must_use]
    pub fn worst_stall_s(&self) -> f64 {
        self.library
            .entries()
            .iter()
            .map(|e| e.weight_bits as f64 / 8.0 / self.bus_bytes_per_second)
            .fold(0.0, f64::max)
    }
}

impl ServePolicy for FlexibleOnlyPolicy<'_> {
    fn name(&self) -> &str {
        "flexible-only"
    }

    fn on_pressure(&mut self, _now_s: f64, signal: &PressureSignal) -> ServingState {
        let idx = self
            .manager
            .select_model(signal.demand_fps(), AcceleratorKind::FlexiblePruning);
        let entry = &self.library.entries()[idx];
        // First load is resident; later switches stream weight_bits over
        // the bus while service stalls.
        let switched = self.current.is_some() && self.current != Some(idx);
        let stall_s = if switched {
            entry.weight_bits as f64 / 8.0 / self.bus_bytes_per_second
        } else {
            0.0
        };
        self.current = Some(idx);
        ServingState {
            throughput_fps: entry.flexible_fps,
            stall_s,
            accuracy: entry.accuracy,
            power: self.library.flexible.power,
            activity: entry.flexible_activity,
            model: entry.name.clone(),
            accelerator: AcceleratorKind::FlexiblePruning,
            model_switched: switched,
            reconfigured: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaflow::LibraryGenerator;
    use adaflow_model::prelude::*;
    use adaflow_nn::DatasetKind;

    fn library() -> Library {
        LibraryGenerator::default_edge_setup()
            .generate(
                &topology::cnv_w2a2_cifar10().expect("builds"),
                DatasetKind::Cifar10,
            )
            .expect("generates")
    }

    fn signal(rate: f64, depth: f64) -> PressureSignal {
        PressureSignal {
            arrival_fps_ewma: rate,
            queue_depth: depth,
            drain_target_s: 0.5,
        }
    }

    #[test]
    fn fixed_max_never_switches() {
        let lib = library();
        let mut p = FixedMaxPolicy::new(&lib);
        let a = p.on_pressure(0.0, &signal(100.0, 0.0));
        let b = p.on_pressure(5.0, &signal(2000.0, 200.0));
        assert_eq!(a, b);
        assert!(!b.model_switched);
        assert_eq!(b.accelerator, AcceleratorKind::Finn);
    }

    #[test]
    fn flexible_only_stays_on_flexible_fabric() {
        let lib = library();
        let mut p = FlexibleOnlyPolicy::new(&lib, RuntimeConfig::default());
        let low = p.on_pressure(0.0, &signal(100.0, 0.0));
        let high = p.on_pressure(1.0, &signal(900.0, 100.0));
        assert_eq!(low.accelerator, AcceleratorKind::FlexiblePruning);
        assert_eq!(high.accelerator, AcceleratorKind::FlexiblePruning);
        assert!(!high.reconfigured, "flexible switches never reconfigure");
        if high.model_switched {
            assert!(high.stall_s > 0.0, "weight reload takes bus time");
            assert!(high.stall_s < 0.05, "weight reload must be fast");
        }
        assert!(p.worst_stall_s() > 0.0);
    }

    #[test]
    fn adaflow_backlog_escalates_model_choice() {
        let lib = library();
        let mut a = AdaFlowServePolicy::new(&lib, RuntimeConfig::default());
        let mut b = AdaFlowServePolicy::new(&lib, RuntimeConfig::default());
        let calm = a.on_pressure(0.0, &signal(430.0, 0.0));
        // Same arrival rate but a deep backlog: pressure demands drain
        // capacity, so the selected model must be at least as fast.
        let pressed = b.on_pressure(0.0, &signal(430.0, 200.0));
        assert!(pressed.throughput_fps >= calm.throughput_fps);
    }

    #[test]
    fn adaflow_first_load_is_free() {
        let lib = library();
        let mut p = AdaFlowServePolicy::new(&lib, RuntimeConfig::default());
        let s = p.on_pressure(0.0, &signal(600.0, 0.0));
        assert_eq!(s.stall_s, 0.0);
        assert!(!s.model_switched);
    }

    #[test]
    fn deadline_guard_blocks_downswitch_under_recent_peak() {
        let lib = library();
        let mut p = AdaFlowServePolicy::new(&lib, RuntimeConfig::default()).with_deadline(0.25);
        // High demand pins a fast tier; a brief lull must NOT give the
        // capacity back — the decayed peak says the rate can jump again
        // within the decision's lifetime.
        let fast = p.on_pressure(0.0, &signal(620.0, 10.0));
        let lull = p.on_pressure(0.5, &signal(380.0, 0.0));
        assert_eq!(lull.model, fast.model, "capacity surrendered in a lull");
        assert_eq!(lull.stall_s, 0.0);
        assert!(!lull.model_switched);
        assert!(!lull.reconfigured);
    }

    #[test]
    fn deadline_guard_lets_capacity_upgrades_through() {
        let lib = library();
        let mut p = AdaFlowServePolicy::new(&lib, RuntimeConfig::default()).with_deadline(0.25);
        let low = p.on_pressure(0.0, &signal(430.0, 0.0));
        // Demand far beyond the live tier: the upgrade must apply
        // immediately, stall and all.
        let high = p.on_pressure(0.5, &signal(900.0, 150.0));
        assert!(high.throughput_fps > low.throughput_fps);
        assert!(high.model_switched);
        assert!(high.stall_s > 0.0, "a real fabric change costs a stall");
    }

    #[test]
    fn unguarded_policy_applies_manager_decisions_directly() {
        let lib = library();
        let mut p = AdaFlowServePolicy::new(&lib, RuntimeConfig::default());
        let fast = p.on_pressure(0.0, &signal(620.0, 10.0));
        // Without a deadline the lull decision is applied as decided, like
        // the fluid simulator would.
        let lull = p.on_pressure(0.5, &signal(380.0, 0.0));
        assert_ne!(lull.model, fast.model, "manager adapts on the lull");
        assert!(lull.model_switched);
    }
}
