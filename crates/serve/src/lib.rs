//! # adaflow-serve — request-level serving
//!
//! Turns the fluid frame-mass model of `adaflow-edge` into a
//! request-granular serving layer: every frame from the paper's 20 IoT
//! devices becomes a timestamped [`Request`] that passes through a bounded
//! admission queue, a dynamic batcher sized for `adaflow_nn::BatchRunner`,
//! and a policy-controlled accelerator — with per-request deadline
//! accounting rather than aggregate loss percentages.
//!
//! The layer answers the question the fluid model cannot: *which* requests
//! miss their deadline, by how much, and what admission control does about
//! it. The Runtime Manager is driven from *observed* pressure — an EWMA of
//! inter-arrival rates plus queue backlog (`adaflow::PressureSignal`) — not
//! from the workload oracle the fluid simulator uses.
//!
//! ## Structure
//!
//! * [`arrivals`] — deterministic per-device request generation;
//! * [`queue`] — bounded FIFO admission with block / shed-oldest /
//!   shed-newest overflow;
//! * [`config`] — [`ServeConfig`] plus the SV001/SV002 lint rules;
//! * [`policy`] — pressure-driven policies (AdaFlow, fixed-max,
//!   flexible-only);
//! * [`device`] — the reusable per-device core (queue + batcher +
//!   deadline accounting) that both the single-device engine and the
//!   `adaflow-fleet` simulator run;
//! * [`engine`] — the discrete-event serving loop with telemetry;
//! * [`experiment`] — seeded multi-run driver mirroring
//!   `adaflow_edge::Experiment`.
//!
//! ## Quickstart
//!
//! ```no_run
//! use adaflow::prelude::*;
//! use adaflow_edge::prelude::*;
//! use adaflow_model::prelude::*;
//! use adaflow_nn::DatasetKind;
//! use adaflow_serve::prelude::*;
//!
//! let library = LibraryGenerator::default_edge_setup()
//!     .generate(&topology::cnv_w2a2_cifar10()?, DatasetKind::Cifar10)?;
//! let spec = WorkloadSpec::paper_edge(Scenario::Unpredictable);
//! let summary = ServeExperiment::new(&library, spec)
//!     .runs(100)
//!     .run_adaflow(RuntimeConfig::default());
//! println!("deadline hits: {:.2}%", summary.deadline_hit_pct);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod config;
pub mod device;
pub mod engine;
pub mod experiment;
pub mod policy;
pub mod queue;
pub mod request;
pub mod summary;
pub mod tracing;

pub use arrivals::generate_requests;
pub use config::ServeConfig;
pub use device::{BatchClose, DeviceCore, DeviceStats};
pub use engine::ServeEngine;
pub use experiment::ServeExperiment;
pub use policy::{AdaFlowServePolicy, FixedMaxPolicy, FlexibleOnlyPolicy, ServePolicy};
pub use queue::{Admission, AdmissionQueue, Arriving, OverflowPolicy};
pub use request::{CompletedRequest, Request};
pub use summary::ServeSummary;
pub use tracing::{emit_request_trace, emit_request_traces};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::arrivals::generate_requests;
    pub use crate::config::ServeConfig;
    pub use crate::device::{BatchClose, DeviceCore, DeviceStats};
    pub use crate::engine::ServeEngine;
    pub use crate::experiment::ServeExperiment;
    pub use crate::policy::{AdaFlowServePolicy, FixedMaxPolicy, FlexibleOnlyPolicy, ServePolicy};
    pub use crate::queue::{Admission, AdmissionQueue, Arriving, OverflowPolicy};
    pub use crate::request::{CompletedRequest, Request};
    pub use crate::summary::ServeSummary;
    pub use crate::tracing::{emit_request_trace, emit_request_traces};
}
