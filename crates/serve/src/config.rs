//! Serving configuration and its static validation rules.
//!
//! [`ServeConfig`] bundles every knob of the serving layer. Its
//! [`validate`](ServeConfig::validate) method reuses the
//! `adaflow-verify` diagnostics engine, contributing two serving-level
//! rules to the workspace lint catalog:
//!
//! | code | checks |
//! |-------|--------|
//! | SV001 | the batcher's max-wait fits inside the deadline budget |
//! | SV002 | queue capacity covers the worst-case reconfiguration backlog |
//!
//! Like the graph rules, both run through [`LintConfig`] allow/deny policy,
//! so `--deny SV002` escalates an under-provisioned queue to a hard error
//! in CI.

use crate::queue::OverflowPolicy;
use adaflow_verify::{Diagnostics, LintConfig, Report, Severity};
use serde::{Deserialize, Serialize};

/// Full configuration of the request-level serving layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Per-request end-to-end deadline budget, seconds.
    pub deadline_s: f64,
    /// Admission queue capacity, requests.
    pub queue_capacity: usize,
    /// Dynamic batcher: close the batch at this size.
    pub max_batch: usize,
    /// Dynamic batcher: close the batch once the oldest member has waited
    /// this long, seconds.
    pub max_wait_s: f64,
    /// What to do with arrivals when the queue is full.
    pub overflow: OverflowPolicy,
    /// Time constant of the arrival-rate EWMA feeding the pressure signal,
    /// seconds.
    pub ewma_tau_s: f64,
    /// Horizon within which the control loop aims to drain the backlog,
    /// seconds (the `T` of `μ ≥ λ + Q/T`).
    pub drain_target_s: f64,
    /// Minimum interval between Runtime Manager consultations, seconds.
    pub control_period_s: f64,
    /// Arrival-rate estimate before the first observation, FPS. Zero means
    /// "use the workload's nominal rate" (the operator knows the fleet
    /// size).
    pub initial_rate_fps: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            deadline_s: 0.25,
            queue_capacity: 256,
            max_batch: 16,
            max_wait_s: 0.02,
            overflow: OverflowPolicy::Block,
            ewma_tau_s: 1.0,
            drain_target_s: 0.5,
            control_period_s: 0.25,
            initial_rate_fps: 0.0,
        }
    }
}

impl ServeConfig {
    /// Sizes the batcher to feed an `adaflow-nn` batch runner: `max_batch`
    /// becomes [`adaflow_nn::parallel::preferred_batch`] for the given
    /// worker count (`0` = one per core).
    #[must_use]
    pub fn with_batch_hint(mut self, threads: usize) -> Self {
        self.max_batch = adaflow_nn::parallel::preferred_batch(threads);
        self
    }

    /// Statically validates the configuration against the serving context:
    /// `nominal_fps` is the workload's nominal offered rate and
    /// `worst_stall_s` the longest service suspension a policy can cause
    /// (full reconfiguration for AdaFlow, weight reload for
    /// flexible-only, zero for the static baseline).
    ///
    /// Findings are reported through the workspace diagnostics engine under
    /// the `SV` rule family.
    #[must_use]
    pub fn validate(&self, nominal_fps: f64, worst_stall_s: f64, lint: LintConfig) -> Report {
        let mut diags = Diagnostics::with_config(lint);
        self.check_sv001(&mut diags);
        self.check_sv002(nominal_fps, worst_stall_s, &mut diags);
        diags.into_report("serve-config")
    }

    /// SV001: the batch max-wait must leave service time inside the
    /// deadline. A max-wait above the whole budget guarantees misses for
    /// any batch closed by the timer; above half the budget it crowds out
    /// stall and service time.
    fn check_sv001(&self, diags: &mut Diagnostics) {
        let budget = self.deadline_s;
        if self.max_wait_s > budget {
            diags.report(
                "SV001",
                Severity::Error,
                None,
                format!(
                    "batch max-wait {:.0} ms exceeds the {:.0} ms deadline budget: \
                     every timer-closed batch misses before service starts",
                    self.max_wait_s * 1e3,
                    budget * 1e3
                ),
                Some(format!(
                    "lower --batch-wait below {:.0} ms or raise --deadline-ms",
                    budget * 1e3
                )),
            );
        } else if self.max_wait_s > 0.5 * budget {
            diags.report(
                "SV001",
                Severity::Warn,
                None,
                format!(
                    "batch max-wait {:.0} ms consumes over half the {:.0} ms deadline budget, \
                     leaving little room for stalls and service",
                    self.max_wait_s * 1e3,
                    budget * 1e3
                ),
                Some("aim for max-wait ≤ 20 % of the deadline".into()),
            );
        } else {
            diags.report(
                "SV001",
                Severity::Info,
                None,
                format!(
                    "batch max-wait {:.0} ms leaves {:.0} ms of the deadline for service",
                    self.max_wait_s * 1e3,
                    (budget - self.max_wait_s) * 1e3
                ),
                None,
            );
        }
    }

    /// SV002: during the worst-case reconfiguration stall the queue absorbs
    /// `nominal_fps × stall` requests; a smaller capacity sheds on every
    /// switch.
    fn check_sv002(&self, nominal_fps: f64, worst_stall_s: f64, diags: &mut Diagnostics) {
        let backlog = nominal_fps * worst_stall_s;
        let capacity = self.queue_capacity as f64;
        if capacity < backlog {
            diags.report(
                "SV002",
                Severity::Warn,
                None,
                format!(
                    "queue capacity {} cannot absorb the worst-case reconfiguration backlog \
                     of {backlog:.0} requests ({nominal_fps:.0} FPS × {:.0} ms stall): \
                     every switch will shed",
                    self.queue_capacity,
                    worst_stall_s * 1e3
                ),
                Some(format!("raise --queue-cap to at least {}", backlog.ceil())),
            );
        } else {
            diags.report(
                "SV002",
                Severity::Info,
                None,
                format!(
                    "queue capacity {} covers the worst-case reconfiguration backlog \
                     of {backlog:.0} requests with {:.0} to spare",
                    self.queue_capacity,
                    capacity - backlog
                ),
                None,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_clean() {
        let report = ServeConfig::default().validate(600.0, 0.145, LintConfig::default());
        assert!(!report.has_errors());
        assert_eq!(report.count(Severity::Warn), 0);
        assert!(report.fired("SV001"));
        assert!(report.fired("SV002"));
    }

    #[test]
    fn sv001_fires_when_wait_exceeds_deadline() {
        let config = ServeConfig {
            max_wait_s: 0.3,
            deadline_s: 0.25,
            ..ServeConfig::default()
        };
        let report = config.validate(600.0, 0.145, LintConfig::default());
        assert!(report.has_errors());
        assert!(report.fired("SV001"));
    }

    #[test]
    fn sv001_warns_when_wait_crowds_budget() {
        let config = ServeConfig {
            max_wait_s: 0.15,
            deadline_s: 0.25,
            ..ServeConfig::default()
        };
        let report = config.validate(600.0, 0.145, LintConfig::default());
        assert!(!report.has_errors());
        assert_eq!(report.count(Severity::Warn), 1);
    }

    #[test]
    fn sv002_warns_on_undersized_queue() {
        let config = ServeConfig {
            queue_capacity: 32,
            ..ServeConfig::default()
        };
        let report = config.validate(600.0, 0.145, LintConfig::default());
        // 600 × 0.145 = 87 > 32.
        assert_eq!(report.count(Severity::Warn), 1);
        assert!(report.fired("SV002"));
    }

    #[test]
    fn deny_escalates_sv002_to_error() {
        let config = ServeConfig {
            queue_capacity: 32,
            ..ServeConfig::default()
        };
        let lint = LintConfig {
            deny: LintConfig::parse_codes("SV002"),
            ..LintConfig::default()
        };
        let report = config.validate(600.0, 0.145, lint);
        assert!(report.has_errors());
    }

    #[test]
    fn batch_hint_tracks_nn_preference() {
        let config = ServeConfig::default().with_batch_hint(2);
        assert_eq!(
            config.max_batch,
            2 * adaflow_nn::parallel::ITEMS_PER_WORKER_HINT
        );
    }
}
