//! Soundness of the AF010 interval analysis against the real engine.
//!
//! The abstract interpretation claims its per-channel intervals contain
//! every concretely reachable accumulator value. These tests drive the
//! *actual* inference engine — scalar GEMM, direct conv and the packed
//! popcount kernels — over random graphs, random weights, random inputs
//! and a pruning sweep, and check the claim two ways:
//!
//! 1. externally, the classifier logits (the last MVTU's raw accumulators)
//!    must lie inside that layer's AF010 intervals;
//! 2. internally, debug builds of `Engine::run_with_scratch` assert every
//!    intermediate accumulator against its layer's interval after each
//!    MVTU, so simply completing a run under `cargo test` (debug profile)
//!    re-proves the property at every layer.
//!
//! A regression guard also pins the AF006 relationship: the exact interval
//! is never looser than the conservative domain bound.

use adaflow_model::prelude::*;
use adaflow_nn::{Activations, ConvStrategy, Engine, PackedBackend};
use adaflow_pruning::{DataflowAwarePruner, FinnConfig};
use adaflow_verify::interval_analysis;
use proptest::prelude::*;

/// Deterministic xorshift for weight/input fills (keeps the proptest cases
/// reproducible from their seed alone).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Self(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// A value from the layer's quantized weight domain (ternary for W2,
/// ±1 for W1).
fn ternary(r: u64, excludes_zero: bool) -> i8 {
    match r % 3 {
        0 => -1,
        1 if !excludes_zero => 0,
        _ => 1,
    }
}

fn filled_conv(
    in_ch: usize,
    out_ch: usize,
    kernel: usize,
    quant: QuantSpec,
    rng: &mut Rng,
) -> Conv2d {
    let excludes_zero = quant.weight_domain().excludes_zero;
    let mut c = Conv2d::new(in_ch, out_ch, kernel, 1, 0, quant);
    for w in c.weights.as_mut_slice() {
        *w = ternary(rng.next(), excludes_zero);
    }
    c
}

fn filled_dense(inf: usize, outf: usize, quant: QuantSpec, rng: &mut Rng) -> Dense {
    let excludes_zero = quant.weight_domain().excludes_zero;
    let mut d = Dense::new(inf, outf, quant);
    for w in d.weights.as_mut_slice() {
        *w = ternary(rng.next(), excludes_zero);
    }
    d
}

fn random_input(shape: TensorShape, seed: u64) -> Activations {
    let mut rng = Rng::new(seed);
    let data: Vec<u8> = (0..shape.elements())
        .map(|_| (rng.next() & 0xff) as u8)
        .collect();
    Activations::from_vec(shape, data)
}

/// A small random well-formed CNN with randomized in-domain weights.
fn arb_graph() -> impl Strategy<Value = CnnGraph> {
    (
        2usize..=4,
        2usize..=6,
        2usize..=5,
        proptest::bool::ANY,
        0u64..=u64::MAX,
    )
        .prop_map(|(c1_half, c2_half, classes, w1, seed)| {
            let (c1, c2) = (c1_half * 2, c2_half * 2);
            let quant = if w1 {
                QuantSpec::w1a2()
            } else {
                QuantSpec::w2a2()
            };
            let levels = quant.threshold_levels();
            let mut rng = Rng::new(seed);
            GraphBuilder::new("soundness", TensorShape::new(1, 12, 12))
                .conv2d(filled_conv(1, c1, 3, quant, &mut rng))
                .threshold(MultiThreshold::uniform(c1, levels, -64, 64))
                .max_pool(MaxPool2d::new(2, 2))
                .conv2d(filled_conv(c1, c2, 3, quant, &mut rng))
                .threshold(MultiThreshold::uniform(c2, levels, -64, 64))
                .dense(filled_dense(c2 * 9, classes, quant, &mut rng))
                .label_select(classes)
                .build()
                .expect("structurally valid")
        })
}

/// Runs `graph` on `inputs` under every kernel configuration and checks the
/// logits against the classifier's AF010 intervals. The in-engine debug
/// asserts cover every intermediate layer on the same runs.
fn assert_sound(graph: &CnnGraph, input_seeds: &[u64]) {
    let analysis = interval_analysis(graph);
    assert!(analysis.stats.converged);
    let classifier = analysis.mvtus.last().expect("graph has MVTUs");
    let configs = [
        (ConvStrategy::Auto, PackedBackend::Scalar),
        (ConvStrategy::Im2col, PackedBackend::Scalar),
        (ConvStrategy::Packed, PackedBackend::Scalar),
        (ConvStrategy::Packed, PackedBackend::Avx2),
    ];
    for (strategy, backend) in configs {
        let engine = Engine::new(graph)
            .expect("verified graph runs")
            .with_strategy(strategy)
            .with_packed_backend(backend);
        let mut scratch = engine.scratch();
        for &seed in input_seeds {
            let input = random_input(graph.input_shape(), seed);
            let result = engine
                .run_with_scratch(&input, &mut scratch)
                .expect("inference succeeds");
            for (ch, &logit) in result.logits.iter().enumerate() {
                let iv = &classifier.per_channel[ch];
                assert!(
                    iv.contains(i128::from(logit)),
                    "logit {logit} of channel {ch} escapes [{}, {}] \
                     (strategy {strategy:?}, backend {backend:?})",
                    iv.lo,
                    iv.hi,
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every observed accumulator lies inside its AF010 interval, for both
    /// the GEMM and packed kernels, across random graphs and inputs.
    #[test]
    fn observed_accumulators_stay_inside_intervals(graph in arb_graph(), s in 0u64..=u64::MAX) {
        assert_sound(&graph, &[s, s ^ 0x9e37_79b9_7f4a_7c15]);
    }

    /// The exact interval is never looser than the AF006 domain bound —
    /// on random graphs and through the pruning transform.
    #[test]
    fn af006_is_never_tighter_than_af010(graph in arb_graph(), rate in 0.0f64..0.6) {
        let check = |g: &CnnGraph| {
            for m in interval_analysis(g).mvtus {
                prop_assert!(
                    m.acc.abs_max() <= m.domain_worst_abs,
                    "{}: exact |acc| {} exceeds domain bound {}",
                    m.name, m.acc.abs_max(), m.domain_worst_abs,
                );
            }
            Ok(())
        };
        check(&graph)?;
        let cfg = FinnConfig::auto(&graph).expect("auto folding");
        let pruned = DataflowAwarePruner::new(cfg).prune(&graph, rate).expect("prunes");
        check(&pruned.graph)?;
    }
}

/// The pruning sweep keeps the engine sound too: intervals are recomputed
/// per pruned graph and the runtime asserts hold on every variant.
#[test]
fn pruned_builtins_stay_sound() {
    let graph = topology::tiny(QuantSpec::w2a2(), 4).expect("builds");
    let cfg = FinnConfig::auto(&graph).expect("auto folding");
    let pruner = DataflowAwarePruner::new(cfg);
    for rate in [0.0, 0.25, 0.5] {
        let g = if rate == 0.0 {
            graph.clone()
        } else {
            pruner.prune(&graph, rate).expect("prunes").graph
        };
        assert_sound(&g, &[7, 1312]);
    }
}

/// CI wall-clock budget: all three fixed-point analyses over every builtin
/// model × pruning sweep must stay under 5 s per model (they run inside
/// every debug engine construction and lint pass, so they have to be
/// cheap).
#[test]
fn fixpoint_analyses_fit_wall_clock_budget() {
    let builtins = [
        topology::cnv_w2a2_cifar10().expect("builds"),
        topology::cnv_w1a2_cifar10().expect("builds"),
        topology::lenet(QuantSpec::w2a2(), 10).expect("builds"),
        topology::lenet(QuantSpec::w1a2(), 10).expect("builds"),
        topology::tiny(QuantSpec::w2a2(), 4).expect("builds"),
    ];
    for graph in &builtins {
        let cfg = FinnConfig::cnv_reference(graph).expect("reference folding");
        let pruner = DataflowAwarePruner::new(cfg.clone());
        let start = std::time::Instant::now();
        for rate in [0.0, 0.25, 0.5] {
            let g = if rate == 0.0 {
                graph.clone()
            } else {
                pruner.prune(graph, rate).expect("prunes").graph
            };
            let analysis = interval_analysis(&g);
            assert!(analysis.stats.converged, "{}", g.name());
            let accel = adaflow_dataflow::DataflowAccelerator::compile(
                &g,
                &FinnConfig::cnv_reference(&g).expect("folding"),
                adaflow_dataflow::AcceleratorKind::Finn,
            )
            .expect("compiles");
            let mut diag = adaflow_verify::Diagnostics::new();
            adaflow_dataflow::check_accelerator(&accel, &mut diag);
            let report = diag.into_report(accel.name());
            assert!(!report.has_errors(), "{report}");
            assert!(report.fired("DF004") && report.fired("DF005"), "{report}");
        }
        assert!(
            start.elapsed().as_secs_f64() < 5.0,
            "{}: fixed-point sweep took {:.2} s (budget 5 s)",
            graph.name(),
            start.elapsed().as_secs_f64(),
        );
    }
}
