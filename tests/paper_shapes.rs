//! Shape assertions for every table and figure of the paper's evaluation:
//! we do not chase the authors' absolute testbed numbers, but who wins, by
//! roughly what factor, and where the crossovers fall must match.

use adaflow::prelude::*;
use adaflow_edge::prelude::*;
use adaflow_model::prelude::*;
use adaflow_nn::DatasetKind;
use std::time::Duration;

fn cifar_library() -> Library {
    LibraryGenerator::default_edge_setup()
        .generate(
            &topology::cnv_w2a2_cifar10().expect("builds"),
            DatasetKind::Cifar10,
        )
        .expect("generates")
}

/// Fig. 1(a): accuracy falls and FPS rises monotonically over the sweep,
/// with a large end-to-end throughput gain.
#[test]
fn fig1a_accuracy_fps_tradeoff() {
    let library = cifar_library();
    let entries = library.entries();
    for pair in entries.windows(2) {
        assert!(pair[1].accuracy <= pair[0].accuracy + 1e-9);
        assert!(pair[1].fixed.throughput_fps >= pair[0].fixed.throughput_fps - 1e-9);
    }
    let gain =
        entries.last().expect("nonempty").fixed.throughput_fps / entries[0].fixed.throughput_fps;
    assert!(gain > 5.0, "end-to-end FPS gain only {gain}");
}

/// Fig. 1(b): frame loss grows with reconfiguration time; slow
/// reconfiguration (>= ~300 ms) is no better than never switching; the
/// ideal 0 ms switch approaches zero loss.
#[test]
fn fig1b_reconfiguration_time_crossover() {
    let library = cifar_library();
    let mut spec = WorkloadSpec::paper_edge(Scenario::Unpredictable);
    spec.scenario = Scenario::Custom {
        deviation: 0.7,
        period_s: 0.35,
    };
    let experiment = Experiment::new(&library, spec).runs(10);

    let finn = experiment.run_original_finn();
    let sweep: Vec<f64> = [0u64, 72, 145, 290, 362]
        .into_iter()
        .map(|ms| {
            experiment
                .run_pruning_reconf(Duration::from_millis(ms))
                .frame_loss_pct
        })
        .collect();
    // Monotone in reconfiguration time.
    for pair in sweep.windows(2) {
        assert!(pair[1] >= pair[0] - 0.5, "loss not monotone: {sweep:?}");
    }
    // Ideal switching nearly eliminates loss; fast real switching wins big.
    assert!(sweep[0] < 3.0, "0 ms loss {}", sweep[0]);
    assert!(
        sweep[2] < finn.frame_loss_pct * 0.6,
        "145 ms should clearly win"
    );
    // The slow end loses (almost) the whole benefit.
    assert!(
        sweep[4] > finn.frame_loss_pct * 0.85,
        "362 ms loss {} vs FINN {}",
        sweep[4],
        finn.frame_loss_pct
    );
}

/// Fig. 5(a): flexible ≈ 2x FINN LUTs with unchanged BRAM; fixed sheds up
/// to ~half the LUTs; BRAM is the dominant resource for FINN.
#[test]
fn fig5a_resource_shapes() {
    let library = cifar_library();
    let finn = &library.baseline.resources;
    let flex = &library.flexible.resources;
    let ratio = flex.lut as f64 / finn.lut as f64;
    assert!((1.7..=2.1).contains(&ratio), "flexible LUT ratio {ratio}");
    assert_eq!(flex.bram36, finn.bram36);
    let p85 = &library.entries()[17].fixed.resources;
    let reduction = 1.0 - p85.lut as f64 / finn.lut as f64;
    assert!(
        (0.35..=0.55).contains(&reduction),
        "85% LUT reduction {reduction}"
    );
}

/// Fig. 5(b,c): energy per inference falls with pruning on both fabric
/// types; fixed is always at least as efficient as flexible; the 25%
/// operating point saves energy by a paper-like factor.
#[test]
fn fig5bc_energy_accuracy_shapes() {
    for (graph, dataset) in [
        (
            topology::cnv_w2a2_cifar10().expect("builds"),
            DatasetKind::Cifar10,
        ),
        (
            topology::cnv_w2a2_gtsrb().expect("builds"),
            DatasetKind::Gtsrb,
        ),
    ] {
        let library = LibraryGenerator::default_edge_setup()
            .generate(&graph, dataset)
            .expect("generates");
        let base = &library.baseline;
        let base_energy = base.power.energy_per_inference_j(base.throughput_fps, 1.0);
        let mut prev_fixed = f64::INFINITY;
        for e in library.entries() {
            let fixed = e
                .fixed
                .power
                .energy_per_inference_j(e.fixed.throughput_fps, 1.0);
            let flex = library
                .flexible
                .power
                .energy_per_inference_j(e.flexible_fps, e.flexible_activity);
            assert!(
                fixed <= flex,
                "fixed must be at least as efficient at {}",
                e.name
            );
            assert!(
                fixed <= prev_fixed + 1e-12,
                "fixed energy not monotone at {}",
                e.name
            );
            prev_fixed = fixed;
        }
        let p25 = &library.entries()[5];
        let fixed25 = p25
            .fixed
            .power
            .energy_per_inference_j(p25.fixed.throughput_fps, 1.0);
        let saving = base_energy / fixed25;
        assert!(
            (1.3..=2.5).contains(&saving),
            "25% fixed energy saving {saving}"
        );
    }
}

/// Table I: AdaFlow beats original FINN on frame loss, QoE and power
/// efficiency for every dataset/model pair and both scenarios; scenario 1
/// reaches near-zero loss; power efficiency gains land in the paper's band.
#[test]
fn table1_adaflow_dominates_finn() {
    for (graph, dataset) in [
        (
            topology::cnv_w2a2_cifar10().expect("builds"),
            DatasetKind::Cifar10,
        ),
        (
            topology::cnv_w1a2_gtsrb().expect("builds"),
            DatasetKind::Gtsrb,
        ),
    ] {
        let library = LibraryGenerator::default_edge_setup()
            .generate(&graph, dataset)
            .expect("generates");
        for scenario in [Scenario::Stable, Scenario::Unpredictable] {
            let experiment = Experiment::new(&library, WorkloadSpec::paper_edge(scenario)).runs(8);
            let ada = experiment.run_adaflow(RuntimeConfig::default());
            let finn = experiment.run_original_finn();
            assert!(ada.frame_loss_pct < finn.frame_loss_pct);
            assert!(ada.qoe_pct > finn.qoe_pct);
            let eff = ada.inferences_per_joule / finn.inferences_per_joule;
            assert!(
                (1.0..=2.0).contains(&eff),
                "{dataset:?}/{scenario:?} eff {eff}"
            );
            if scenario == Scenario::Stable {
                assert!(
                    ada.frame_loss_pct < 2.0,
                    "scenario 1 loss {}",
                    ada.frame_loss_pct
                );
            }
        }
    }
}

/// Fig. 6: the shifting scenario starts on fixed accelerators and changes
/// dataflow to the flexible fabric after the 15 s regime shift, after which
/// switches are fast (no reconfiguration).
#[test]
fn fig6_change_of_dataflow_after_regime_shift() {
    let library = cifar_library();
    let experiment = Experiment::new(&library, WorkloadSpec::paper_edge(Scenario::Shifting));
    let lib = &library;
    let config = RuntimeConfig::default();
    let (metrics, trace) =
        experiment.trace_with(1, move || Box::new(AdaFlowPolicy::new(lib, config)));

    // Early phase on fixed, late phase on flexible.
    let early: Vec<&str> = trace
        .iter()
        .filter(|p| p.t_s < 14.0)
        .map(|p| p.accelerator.as_str())
        .collect();
    assert!(
        early.iter().all(|&a| a == "fixed"),
        "early phase must stay fixed"
    );
    let late_flexible = trace
        .iter()
        .filter(|p| p.t_s > 20.0 && p.accelerator == "flexible")
        .count();
    assert!(
        late_flexible > 0,
        "late phase must reach the flexible fabric"
    );
    assert!(metrics.flexible_switches >= 1.0);
    // Quality shape: better than FINN in the same run.
    let (finn_metrics, _) =
        experiment.trace_with(1, move || Box::new(OriginalFinnPolicy::new(lib)));
    assert!(metrics.frame_loss_pct < finn_metrics.frame_loss_pct);
    assert!(metrics.qoe_pct > finn_metrics.qoe_pct);
}

/// Scenario 2 switching profile: many model switches, dominated by fast
/// flexible switches rather than reconfigurations.
#[test]
fn scenario2_switching_profile() {
    let library = cifar_library();
    let experiment =
        Experiment::new(&library, WorkloadSpec::paper_edge(Scenario::Unpredictable)).runs(10);
    let ada = experiment.run_adaflow(RuntimeConfig::default());
    assert!(ada.model_switches >= 5.0, "switches {}", ada.model_switches);
    assert!(
        ada.flexible_switches > ada.reconfigurations,
        "flexible {} vs reconf {}",
        ada.flexible_switches,
        ada.reconfigurations
    );
}
