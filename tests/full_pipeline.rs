//! Cross-crate integration: the full AdaFlow pipeline from CNN definition
//! through pruning, synthesis, library generation and runtime serving.

use adaflow::prelude::*;
use adaflow_dataflow::{AcceleratorKind, DataflowAccelerator, StreamSimulator};
use adaflow_edge::prelude::*;
use adaflow_hls::{synthesize, FpgaDevice};
use adaflow_model::prelude::*;
use adaflow_nn::prelude::*;
use adaflow_nn::DatasetKind;
use adaflow_pruning::{DataflowAwarePruner, FinnConfig};

fn cifar_library() -> Library {
    LibraryGenerator::default_edge_setup()
        .generate(
            &topology::cnv_w2a2_cifar10().expect("builds"),
            DatasetKind::Cifar10,
        )
        .expect("generates")
}

#[test]
fn cnn_to_accelerator_to_serving() {
    // Design time.
    let library = cifar_library();
    assert_eq!(library.entries().len(), 18);

    // Run time: one full scenario-2 serving run end to end.
    let spec = WorkloadSpec::paper_edge(Scenario::Unpredictable);
    let segments = spec.generate(42);
    let mut policy = AdaFlowPolicy::new(&library, RuntimeConfig::default());
    let (metrics, trace) = EdgeSim::new(SimConfig {
        record_trace: true,
        ..SimConfig::default()
    })
    .run(&mut policy, &segments);

    // Conservation and sanity across the whole stack.
    assert!((metrics.processed + metrics.lost - metrics.offered).abs() < 1e-6);
    assert!(metrics.qoe_pct > 0.0 && metrics.qoe_pct <= 100.0);
    assert!(metrics.avg_power_w > 0.5 && metrics.avg_power_w < 3.0);
    assert!(!trace.is_empty());
}

#[test]
fn pruned_model_runs_on_both_fabrics_with_identical_results() {
    // The functional contract behind the whole framework: a pruned model
    // computes the same function on its fixed accelerator and on the
    // flexible fabric (which is what lets the Runtime Manager switch
    // freely). Verified on real tensors with the integer engine.
    let graph = topology::tiny(QuantSpec::w2a2(), 4).expect("builds");
    let folding = FinnConfig::auto(&graph).expect("auto");
    let pruner = DataflowAwarePruner::new(folding);
    let pruned = pruner.prune(&graph, 0.5).expect("prunes");

    let fabric = FlexibleExecutor::new(graph.clone());
    let data = SyntheticDataset::new(DatasetSpec::tiny(4), 9);
    let engine = Engine::new(&pruned.graph).expect("engine");
    for i in 0..16 {
        let sample = data.sample(i);
        let fixed = engine.run(&sample.image).expect("fixed run");
        let flex = fabric
            .execute(&pruned.graph, &sample.image)
            .expect("flexible run");
        assert_eq!(fixed, flex.result, "divergence on sample {i}");
    }
}

#[test]
fn library_json_survives_full_round_trip_and_serves() {
    let library = cifar_library();
    let json = library.to_json().expect("export");
    let reloaded = Library::from_json(&json).expect("import");

    // A manager over the reloaded library makes identical decisions.
    let mut a = RuntimeManager::new(&library, RuntimeConfig::default());
    let mut b = RuntimeManager::new(&reloaded, RuntimeConfig::default());
    for (t, fps) in [(0.0, 500.0), (1.0, 900.0), (1.5, 200.0), (4.0, 700.0)] {
        let da = a.decide(t, fps);
        let db = b.decide(t, fps);
        assert_eq!(da, db);
    }
}

#[test]
fn stream_simulation_agrees_with_synthesized_throughput() {
    // The Verilator stand-in must agree with the analytical model that the
    // library's FPS figures are built from.
    let graph = topology::cnv_w2a2_cifar10().expect("builds");
    let folding = FinnConfig::cnv_reference(&graph).expect("valid");
    let accel =
        DataflowAccelerator::compile(&graph, &folding, AcceleratorKind::Finn).expect("compiles");
    let synth = synthesize(&accel, &FpgaDevice::zcu104()).expect("synthesizes");
    let stats = StreamSimulator::new(&accel, 2).run(32);
    let analytic_ii = accel.initiation_interval();
    assert_eq!(stats.observed_ii, analytic_ii);
    assert!(synth.throughput_fps > 0.9 * stats.throughput_fps);
}

#[test]
fn all_four_paper_combos_generate_and_serve() {
    for (graph, dataset) in [
        (
            topology::cnv_w2a2_cifar10().expect("builds"),
            DatasetKind::Cifar10,
        ),
        (
            topology::cnv_w2a2_gtsrb().expect("builds"),
            DatasetKind::Gtsrb,
        ),
        (
            topology::cnv_w1a2_cifar10().expect("builds"),
            DatasetKind::Cifar10,
        ),
        (
            topology::cnv_w1a2_gtsrb().expect("builds"),
            DatasetKind::Gtsrb,
        ),
    ] {
        let library = LibraryGenerator::default_edge_setup()
            .generate(&graph, dataset)
            .expect("generates");
        let experiment =
            Experiment::new(&library, WorkloadSpec::paper_edge(Scenario::Stable)).runs(3);
        let ada = experiment.run_adaflow(RuntimeConfig::default());
        let finn = experiment.run_original_finn();
        assert!(
            ada.frame_loss_pct <= finn.frame_loss_pct,
            "AdaFlow must not lose more frames than FINN ({dataset:?})"
        );
    }
}

#[test]
fn lenet_family_flows_through_the_whole_stack() {
    // Generality: a different topology family (5x5 kernels, pool->flatten
    // boundary with spatial extent) must pass pruning (exercising the
    // generalized SIMD constraint), synthesis, library generation and
    // serving.
    let graph = topology::lenet(QuantSpec::w2a2(), 10).expect("builds");
    let folding = FinnConfig::auto(&graph).expect("auto folding");
    let pruner = DataflowAwarePruner::new(folding);
    let pruned = pruner.prune(&graph, 0.5).expect("prunes");
    assert!(pruned.achieved_rate() > 0.0, "lenet must be prunable");
    assert!(Engine::new(&pruned.graph).is_ok());

    // The flexible fabric computes the pruned LeNet exactly.
    let fabric = FlexibleExecutor::new(graph.clone());
    let mut img = Activations::zeroed(graph.input_shape());
    for (i, v) in img.as_mut_slice().iter_mut().enumerate() {
        *v = (i * 31 % 251) as u8;
    }
    let fixed = Engine::new(&pruned.graph)
        .expect("engine")
        .run(&img)
        .expect("runs");
    let flex = fabric.execute(&pruned.graph, &img).expect("flexible runs");
    assert_eq!(fixed, flex.result);

    // Library + serving on a small device workload.
    let generator = LibraryGenerator {
        pruning_rates: vec![0.0, 0.25, 0.5],
        device: adaflow_hls::FpgaDevice::zcu104(),
        folding: None,
    };
    let library = generator
        .generate(&graph, DatasetKind::Cifar10)
        .expect("generates");
    assert_eq!(library.entries().len(), 3);
    let base_fps = library.unpruned().fixed.throughput_fps;
    let mut manager = RuntimeManager::new(&library, RuntimeConfig::default());
    let d = manager.decide(0.0, base_fps * 1.5);
    assert!(
        d.throughput_fps >= base_fps,
        "manager should reach for a faster model"
    );
}

#[test]
fn runtime_manager_respects_threshold_change_mid_run() {
    let library = cifar_library();
    let mut manager = RuntimeManager::new(&library, RuntimeConfig::default());
    // Impossible workload: manager picks the fastest model within threshold.
    let before = manager.decide(0.0, 1e9);
    manager.set_accuracy_threshold(40.0);
    let after = manager.decide(10.0, 1e9);
    assert!(
        after.throughput_fps > before.throughput_fps,
        "a looser threshold must unlock faster models"
    );
    assert!(after.accuracy < before.accuracy);
}
