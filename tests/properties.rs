//! Cross-crate property-based tests (proptest) on the framework's core
//! invariants.

use adaflow_dataflow::{AcceleratorKind, DataflowAccelerator};
use adaflow_hls::estimate_accelerator;
use adaflow_model::prelude::*;
use adaflow_nn::prelude::*;
use adaflow_pruning::{DataflowAwarePruner, FinnConfig};
use proptest::prelude::*;

/// A small randomized quantized CNN: conv → thresh → pool → conv → thresh →
/// dense → top1, with randomized channel widths.
fn arb_graph() -> impl Strategy<Value = CnnGraph> {
    (2usize..=6, 2usize..=8, 2usize..=6, proptest::bool::ANY).prop_map(
        |(c1_half, c2_half, classes, w1)| {
            let (c1, c2) = (c1_half * 2, c2_half * 2);
            let quant = if w1 {
                QuantSpec::w1a2()
            } else {
                QuantSpec::w2a2()
            };
            let levels = quant.threshold_levels();
            GraphBuilder::new("prop", TensorShape::new(1, 12, 12))
                .conv2d(Conv2d::new(1, c1, 3, 1, 0, quant))
                .threshold(MultiThreshold::uniform(c1, levels, -64, 64))
                .max_pool(MaxPool2d::new(2, 2))
                .conv2d(Conv2d::new(c1, c2, 3, 1, 0, quant))
                .threshold(MultiThreshold::uniform(c2, levels, -64, 64))
                .dense(Dense::new(c2 * 9, classes, quant))
                .label_select(classes)
                .build()
                .expect("structurally valid by construction")
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pruning at any rate yields a valid, executable graph whose channel
    /// counts satisfy every PE/SIMD divisibility constraint.
    #[test]
    fn pruning_preserves_dataflow_constraints(
        graph in arb_graph(),
        rate in 0.0f64..0.95,
    ) {
        let folding = FinnConfig::auto(&graph).expect("auto folding");
        let pruner = DataflowAwarePruner::new(folding.clone());
        let pruned = pruner.prune(&graph, rate).expect("prunes");

        // Constraints: PE divides the kept filters; the next MVTU's SIMD
        // divides the kept input width (channels for a conv successor,
        // flattened features for a dense successor).
        for rec in &pruned.layers {
            let f = folding.folding(rec.layer).expect("folding entry");
            prop_assert_eq!(rec.kept % f.pe, 0);
        }
        for node in pruned.graph.iter() {
            let in_width = match &node.layer {
                Layer::Conv2d(c) => c.in_channels,
                Layer::Dense(d) => d.in_features,
                _ => continue,
            };
            let f = folding.folding(node.id).expect("folding entry");
            prop_assert_eq!(in_width % f.simd, 0, "SIMD violated at {}", node.name);
        }
        // Executability.
        prop_assert!(Engine::new(&pruned.graph).is_ok());
        // Monotone effect on work.
        prop_assert!(pruned.graph.total_macs() <= graph.total_macs());
        // Same folding still legal on the pruned model.
        let foldings: Vec<_> = folding.entries().iter().map(|&(_, f)| f).collect();
        prop_assert!(FinnConfig::new(&pruned.graph, foldings).is_ok());
    }

    /// Flexible execution of a pruned model is bit-identical to fixed
    /// execution, for random models, rates and inputs.
    #[test]
    fn flexible_equals_fixed(
        graph in arb_graph(),
        rate in 0.0f64..0.9,
        seed in 0u64..1_000,
    ) {
        let folding = FinnConfig::auto(&graph).expect("auto folding");
        let pruned = DataflowAwarePruner::new(folding).prune(&graph, rate).expect("prunes");
        let fabric = FlexibleExecutor::new(graph.clone());

        let mut img = Activations::zeroed(graph.input_shape());
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        for v in img.as_mut_slice() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            *v = (state % 251) as u8;
        }
        let fixed = Engine::new(&pruned.graph).expect("engine").run(&img).expect("runs");
        let flex = fabric.execute(&pruned.graph, &img).expect("flexible runs");
        prop_assert_eq!(fixed, flex.result);
    }

    /// More pruning never increases resources or decreases throughput of
    /// the fixed accelerator.
    #[test]
    fn pruning_is_monotone_on_hardware(
        graph in arb_graph(),
        lo in 0.0f64..0.4,
        delta in 0.1f64..0.5,
    ) {
        let folding = FinnConfig::auto(&graph).expect("auto folding");
        let pruner = DataflowAwarePruner::new(folding.clone());
        let small = pruner.prune(&graph, lo).expect("prunes");
        let large = pruner.prune(&graph, lo + delta).expect("prunes");
        prop_assume!(large.achieved_rate() > small.achieved_rate());

        let a = DataflowAccelerator::compile(&small.graph, &folding, AcceleratorKind::FixedPruning)
            .expect("compiles");
        let b = DataflowAccelerator::compile(&large.graph, &folding, AcceleratorKind::FixedPruning)
            .expect("compiles");
        prop_assert!(b.throughput_fps() >= a.throughput_fps());

        let ra = estimate_accelerator(&a).expect("estimates");
        let rb = estimate_accelerator(&b).expect("estimates");
        prop_assert!(rb.lut <= ra.lut);
        prop_assert!(rb.bram36 <= ra.bram36);
    }

    /// The flexible fabric always costs more LUTs than FINN but never
    /// changes BRAM, for any graph.
    #[test]
    fn flexible_overhead_invariants(graph in arb_graph()) {
        let folding = FinnConfig::auto(&graph).expect("auto folding");
        let finn = DataflowAccelerator::compile(&graph, &folding, AcceleratorKind::Finn)
            .expect("compiles");
        let flex =
            DataflowAccelerator::compile(&graph, &folding, AcceleratorKind::FlexiblePruning)
                .expect("compiles");
        let rf = estimate_accelerator(&finn).expect("estimates");
        let rx = estimate_accelerator(&flex).expect("estimates");
        prop_assert!(rx.lut > rf.lut);
        prop_assert_eq!(rx.bram36, rf.bram36);
        // Latency overhead stays within the paper's 3.7% bound.
        let rel = flex.latency_cycles() as f64 / finn.latency_cycles() as f64 - 1.0;
        prop_assert!((0.0..=0.037 + 1e-9).contains(&rel), "overhead {}", rel);
    }

    /// Threshold tables stay monotone through pruning.
    #[test]
    fn thresholds_stay_monotone_after_pruning(
        graph in arb_graph(),
        rate in 0.0f64..0.9,
    ) {
        let folding = FinnConfig::auto(&graph).expect("auto folding");
        let pruned = DataflowAwarePruner::new(folding).prune(&graph, rate).expect("prunes");
        for node in pruned.graph.iter() {
            if let Layer::MultiThreshold(t) = &node.layer {
                for c in 0..t.table.channels() {
                    let row = t.table.row(c);
                    prop_assert!(row.windows(2).all(|w| w[0] <= w[1]));
                }
            }
        }
    }
}
