//! Smart video surveillance at the Edge — the paper's motivating workload.
//!
//! Twenty cameras stream frames to an FPGA Edge server for CNN inference.
//! This example runs the full serving simulation for CNVW2A2/GTSRB (traffic
//! sign recognition, the surveillance-adjacent dataset) under all three
//! scenarios and compares AdaFlow with the static FINN baseline.
//!
//! ```text
//! cargo run --release -p adaflow-bench --example surveillance
//! ```

use adaflow::prelude::*;
use adaflow_edge::prelude::*;
use adaflow_model::prelude::*;
use adaflow_nn::DatasetKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let library = LibraryGenerator::default_edge_setup()
        .generate(&topology::cnv_w2a2_gtsrb()?, DatasetKind::Gtsrb)?;
    println!("Edge server: ZCU104, CNVW2A2/GTSRB, 20 cameras x 30 FPS, 25 s, 25 runs\n");

    for scenario in [
        Scenario::Stable,
        Scenario::Unpredictable,
        Scenario::Shifting,
    ] {
        let experiment = Experiment::new(&library, WorkloadSpec::paper_edge(scenario)).runs(25);
        let ada = experiment.run_adaflow(RuntimeConfig::default());
        let finn = experiment.run_original_finn();
        println!("{}:", scenario.name());
        println!(
            "  AdaFlow: loss {:>5.2}%  QoE {:>5.2}  power {:.2} W  \
             {:.0} inf/J  switches {:.1} (reconf {:.1}, flexible {:.1})",
            ada.frame_loss_pct,
            ada.qoe_pct,
            ada.avg_power_w,
            ada.inferences_per_joule,
            ada.model_switches,
            ada.reconfigurations,
            ada.flexible_switches
        );
        println!(
            "  FINN:    loss {:>5.2}%  QoE {:>5.2}  power {:.2} W  {:.0} inf/J",
            finn.frame_loss_pct, finn.qoe_pct, finn.avg_power_w, finn.inferences_per_joule
        );
        println!(
            "  -> {:.2}x more inferences processed, {:.2}x power efficiency\n",
            ada.processed / finn.processed,
            ada.inferences_per_joule / finn.inferences_per_joule
        );
    }
    Ok(())
}
