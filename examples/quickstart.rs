//! Quickstart: build an AdaFlow library and drive the Runtime Manager.
//!
//! ```text
//! cargo run --release -p adaflow-bench --example quickstart
//! ```

use adaflow::prelude::*;
use adaflow_model::prelude::*;
use adaflow_nn::DatasetKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Design time: the initial CNN (CNVW2A2 adapted to CIFAR-10) goes
    //    through the Library Generator: pruning sweep, accuracy scoring and
    //    accelerator synthesis (fixed per model + one flexible).
    let initial = topology::cnv_w2a2_cifar10()?;
    println!(
        "initial model: {} ({} MACs)",
        initial.name(),
        initial.total_macs()
    );

    let library =
        LibraryGenerator::default_edge_setup().generate(&initial, DatasetKind::Cifar10)?;
    println!(
        "library: {} models, baseline {:.0} FPS @ {:.2} W, flexible fabric {} LUTs",
        library.entries().len(),
        library.baseline.throughput_fps,
        library.baseline.power.power(1.0, 1.0).total_w,
        library.flexible.resources.lut
    );

    // 2. Run time: react to workload changes under a 10% accuracy threshold.
    let mut manager = RuntimeManager::new(&library, RuntimeConfig::default());
    for (t, fps) in [
        (0.0, 300.0),
        (5.0, 700.0),
        (5.5, 250.0),
        (6.0, 800.0),
        (6.5, 400.0),
    ] {
        let d = manager.decide(t, fps);
        println!(
            "t={t:>4.1}s workload={fps:>5.0} -> {} on {} ({:.0} FPS, {:.1}% acc, stall {:.1} ms)",
            d.model_name,
            d.accelerator,
            d.throughput_fps,
            d.accuracy,
            d.stall_s * 1e3
        );
    }
    Ok(())
}
