//! Design-space exploration: inspect the accuracy/throughput/resource/energy
//! trade-off the Library Generator produces, and export the library table.
//!
//! ```text
//! cargo run --release -p adaflow-bench --example design_space
//! ```

use adaflow::prelude::*;
use adaflow_model::prelude::*;
use adaflow_nn::DatasetKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let library = LibraryGenerator::default_edge_setup()
        .generate(&topology::cnv_w2a2_cifar10()?, DatasetKind::Cifar10)?;

    println!(
        "Design space of {} ({} models):\n",
        library.initial_model,
        library.entries().len()
    );
    println!(
        "{:>6} {:>9} {:>9} {:>10} {:>8} {:>8} {:>12}",
        "rate%", "accuracy", "FPS", "LUT", "BRAM", "E (mJ)", "channels[0]"
    );
    for e in library.entries() {
        let energy_mj = e
            .fixed
            .power
            .energy_per_inference_j(e.fixed.throughput_fps, 1.0)
            * 1e3;
        println!(
            "{:>6.0} {:>9.2} {:>9.0} {:>10} {:>8} {:>8.3} {:>12}",
            e.requested_rate * 100.0,
            e.accuracy,
            e.fixed.throughput_fps,
            e.fixed.resources.lut,
            e.fixed.resources.bram36,
            energy_mj,
            e.conv_channels[0]
        );
    }

    // Models an operator could select under different accuracy budgets.
    println!("\nAccuracy-threshold cuts:");
    for threshold in [2.0, 5.0, 10.0, 20.0] {
        let candidates = library.within_threshold(threshold);
        let fastest = candidates
            .iter()
            .max_by(|a, b| {
                a.fixed
                    .throughput_fps
                    .partial_cmp(&b.fixed.throughput_fps)
                    .expect("finite")
            })
            .expect("unpruned always qualifies");
        println!(
            "  threshold {threshold:>4.1} pts -> {} candidates, fastest {:.0} FPS ({})",
            candidates.len(),
            fastest.fixed.throughput_fps,
            fastest.name
        );
    }

    // Export the library table the way AdaFlow's design step would persist it.
    let json = library.to_json()?;
    let path = std::env::temp_dir().join("adaflow_library_cnv_w2a2_cifar10.json");
    std::fs::write(&path, &json)?;
    println!(
        "\nlibrary table exported to {} ({} bytes)",
        path.display(),
        json.len()
    );
    let reloaded = Library::from_json(&json)?;
    assert_eq!(reloaded.entries().len(), library.entries().len());
    Ok(())
}
