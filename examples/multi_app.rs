//! Multi-application Edge server: one designed artifact (a
//! [`adaflow::LibrarySuite`]) serving several CNN applications, each with
//! its own Runtime Manager — the paper's "initial CNN models" (plural) user
//! input taken to its deployment conclusion.
//!
//! ```text
//! cargo run --release -p adaflow-bench --example multi_app
//! ```

use adaflow::prelude::*;
use adaflow_model::prelude::*;
use adaflow_nn::DatasetKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Design time: generate one library per application with a shared
    // generator configuration.
    let generator = LibraryGenerator::default_edge_setup();
    let suite = LibrarySuite::generate(
        &generator,
        [
            (
                "object-classification".to_string(),
                topology::cnv_w2a2_cifar10()?,
                DatasetKind::Cifar10,
            ),
            (
                "traffic-signs".to_string(),
                topology::cnv_w2a2_gtsrb()?,
                DatasetKind::Gtsrb,
            ),
            (
                "low-power-classification".to_string(),
                topology::cnv_w1a2_cifar10()?,
                DatasetKind::Cifar10,
            ),
        ],
    )?;
    println!(
        "suite holds {} applications: {:?}\n",
        suite.len(),
        suite.applications()
    );

    // Run time: each application gets its own manager over the shared suite;
    // a scheduler upstream would time-multiplex the FPGA between them.
    for app in suite.applications() {
        let library = suite.library(app).expect("registered");
        let mut manager = suite.manager_for(app, RuntimeConfig::default())?;
        let base = library.unpruned();
        println!(
            "{app}: base model {} ({:.1}% top-1, {:.0} FPS)",
            base.name, base.accuracy, base.fixed.throughput_fps
        );
        for (t, fps) in [(0.0, 300.0), (2.0, 750.0)] {
            let d = manager.decide(t, fps);
            println!(
                "  t={t:.0}s workload={fps:.0} -> {} on {} ({:.0} FPS)",
                d.model_name, d.accelerator, d.throughput_fps
            );
        }
        println!();
    }

    // The whole designed artifact round-trips through its JSON form.
    let json = suite.to_json()?;
    let restored = LibrarySuite::from_json(&json)?;
    assert_eq!(suite, restored);
    println!(
        "suite artifact: {} bytes of JSON, round-trips losslessly",
        json.len()
    );
    Ok(())
}
