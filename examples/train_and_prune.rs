//! End-to-end small-scale flow on real tensors: train a tiny quantized CNN
//! on a synthetic dataset, prune it dataflow-aware, retrain, and verify
//! that the flexible fabric computes the pruned model bit-exactly while the
//! fixed accelerator of the pruned model gets faster and smaller.
//!
//! This exercises the *real* training/retraining path (STE SGD + threshold
//! calibration) that stands in for the paper's 40-epoch Brevitas runs.
//!
//! ```text
//! cargo run --release -p adaflow-bench --example train_and_prune
//! ```

use adaflow_dataflow::{AcceleratorKind, DataflowAccelerator};
use adaflow_hls::{synthesize, FpgaDevice};
use adaflow_model::prelude::*;
use adaflow_nn::prelude::*;
use adaflow_pruning::{retrain, DataflowAwarePruner, FinnConfig, RetrainPolicy};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Train the tiny CNN on a 4-class synthetic dataset.
    let graph = topology::tiny(QuantSpec::w2a2(), 4)?;
    let data = SyntheticDataset::new(DatasetSpec::tiny(4), 3);
    let config = TrainingConfig::default();
    let (trained, report) = Trainer::new(&graph, 11)?.train(&data, &config)?;
    println!(
        "trained {}: float acc {:.1}%, quantized acc {:.1}% (chance 25%)",
        trained.name(),
        report.float_accuracy * 100.0,
        report.quantized_accuracy * 100.0
    );

    // 2. Prune it under the dataflow constraints and retrain.
    let folding = FinnConfig::auto(&trained)?;
    let pruner = DataflowAwarePruner::new(folding.clone());
    let pruned = pruner.prune(&trained, 0.5)?;
    println!(
        "pruned at 50% -> achieved {:.1}% (channels {:?} -> {:?})",
        pruned.achieved_rate() * 100.0,
        trained.conv_channels(),
        pruned.conv_channels()
    );
    let outcome = retrain(
        pruned,
        &RetrainPolicy::Sgd {
            dataset: data.clone(),
            config: config.clone(),
        },
    )?;
    println!(
        "retrained pruned model: quantized acc {:.1}%",
        outcome.accuracy
    );

    // 3. The flexible fabric (synthesized for the unpruned worst case)
    //    computes the pruned model bit-exactly.
    let fabric = FlexibleExecutor::new(trained.clone());
    let sample = data.sample(99_999);
    let flexible = fabric.execute(&outcome.model.graph, &sample.image)?;
    let fixed = Engine::new(&outcome.model.graph)?.run(&sample.image)?;
    assert_eq!(
        flexible.result, fixed,
        "flexible and fixed execution must agree"
    );
    println!(
        "flexible == fixed execution verified; mean idle fraction {:.1}%",
        flexible.mean_idle_fraction() * 100.0
    );

    // 4. Hardware effect on a small device (Zynq-7020 class).
    let device = FpgaDevice::z7020();
    let base = synthesize(
        &DataflowAccelerator::compile(&trained, &folding, AcceleratorKind::Finn)?,
        &device,
    )?;
    let fast = synthesize(
        &DataflowAccelerator::compile(
            &outcome.model.graph,
            &folding,
            AcceleratorKind::FixedPruning,
        )?,
        &device,
    )?;
    println!(
        "accelerators on {}: baseline {:.0} FPS / {} LUT, pruned-fixed {:.0} FPS / {} LUT",
        device.name,
        base.throughput_fps,
        base.resources.lut,
        fast.throughput_fps,
        fast.resources.lut
    );
    assert!(fast.throughput_fps >= base.throughput_fps);
    assert!(fast.resources.lut <= base.resources.lut);
    Ok(())
}
